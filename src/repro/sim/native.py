"""Native kernel tier: ``LoopKernel`` IR → C → shared library → ctypes.

The third and fastest compilation tier.  A kernel's IR is rendered to a
C translation unit (one scalar entry point mirroring the interpreter's
statement-at-a-time semantics, plus — when the kernel is depth-1 and
unguarded — a lane-blocked vector entry mirroring
:func:`repro.sim.executor._exec_stmts_vector`), compiled once per
*(kernel fingerprint, toolchain identity)* with the host compiler
(:mod:`.toolchain`), and loaded via :func:`numpy.ctypeslib.load_library`.

Build once, attach many: artifacts live in an on-disk cache keyed by
``sha256(kernel_fp | toolchain | schema)``, installed atomically
(tmp + ``os.replace``) under an ``flock`` so concurrent pool workers
never race a build, with a JSON sidecar recording the build-time
verification verdict and an integrity digest of the ``.so`` — attaching
processes re-verify the bytes, not the semantics.

Semantics contract (why the output can be *bit-identical* to numpy):

* the toolchain compiles with ``-fwrapv -ffp-contract=off`` (wrapping
  int arithmetic, no FMA contraction);
* ``sqrt`` is emitted as ``sqrtf(fabsf(x))`` plus a fire counter —
  exactly :func:`repro.sim.ufuncs.guarded_sqrt`, including ``-0.0``;
* min/max propagate NaN the way ``np.minimum``/``np.maximum`` do
  (``(a < b || a != a) ? a : b``);
* shifts reproduce numpy's guarded semantics (shift count ≥ width
  yields 0, or the sign for right shifts);
* integer division goes through ``double`` like ``np.divide`` + cast;
* ``Select`` and integer ``abs`` are helper *functions*, so both
  operands are evaluated (``np.where`` evaluates both branches and the
  sqrt fire counter must see the same calls).

What C cannot promise bit-for-bit — libm ``exp`` vs numpy's SIMD
``np.exp`` is the known case — the build-time self-check catches: every
artifact is executed against the interpreter before installation and
kernels that don't match *exactly* are demoted to the PR-4 tiers with a
``-Rpass-missed=native`` remark (``REPRO_NATIVE_TOLERANCE=1`` opts into
accepting float-only drift within ``rtol=1e-4``).

``REPRO_NATIVE=0`` disables the tier; a host with no C compiler
degrades to the NumPy/scalar tiers with a single diagnostic remark.
"""

from __future__ import annotations

import ctypes
import fcntl
import hashlib
import json
import os
import time
from typing import Optional

import numpy as np

from ..analysis.reduction import ScalarClass
from ..ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    CmpKind,
    Compare,
    Const,
    Convert,
    Expr,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
    UnOpKind,
)
from ..ir.kernel import LoopKernel
from ..ir.stmt import ArrayStore, IfBlock, ScalarAssign
from ..ir.types import DType
from . import compile as _compile
from . import ufuncs
from .compile import CompileError, CompiledKernel
from .executor import (
    _Ctx,
    _exec_stmts_vector,
    initial_scalars,
    make_buffers,
    make_lane_env,
    run_scalar_interpreted,
)
from .toolchain import (
    Toolchain,
    ToolchainError,
    compile_shared,
    find_toolchain,
    reset_toolchain_memo,
    toolchain_failure,
)
from .ufuncs import NP_DTYPE

__all__ = [
    "NativeError",
    "NativeUnsupported",
    "clear_attached",
    "clear_native_artifacts",
    "native_available",
    "native_batch_size",
    "native_cache_dir",
    "native_compiled",
    "native_enabled",
    "prebuild_native",
    "reset_native_state",
    "try_run_vector_blocks",
]

#: Bump when the emitted C or the ABI of the entry points changes:
#: every cached artifact older than this schema is invalidated.
#: 2: range-analysis consumers (unguarded fast body behind a runtime
#: contract scan, plain shifts, folded constant guards).
#: 3: batched translation units — sidecar meta gained ``so`` (shared
#: ``batch-*.so`` membership) and ``prefix`` (per-member symbol names),
#: and the loader resolves shared objects through the meta.
#: 4: depth-2 vector entries — the vector ABI gained an ``outer``
#: parameter (one call per outer-loop instance; depth-1 callers pass 0).
NATIVE_SCHEMA = 4

#: Inner iterations of the build-time interpreter-vs-native check.
#: Longer than the PR-4 check (16): libm divergence (``expf``) needs a
#: few dozen elements to show up reliably.
_NATIVE_CHECK_ITERS = 64

#: Largest vector factor the emitted per-statement lane temps hold.
_VF_MAX = 256


class NativeError(RuntimeError):
    """A native kernel failed *at run time* (out-of-bounds index).

    Deliberately not a :class:`CompileError`: buffers may already be
    partially mutated, so silently re-running the kernel on another
    tier would be wrong.
    """


class NativeUnsupported(Exception):
    """The kernel shape cannot be rendered to C (static refusal)."""


class _Failure:
    """Memoized negative attach result."""

    __slots__ = ("reason",)

    def __init__(self, reason: str):
        self.reason = reason


class _NativeModule:
    """A loaded artifact: entry-point wrappers plus its sidecar meta."""

    __slots__ = ("lib", "meta", "scalar_run", "vector_run", "lanes")

    def __init__(self, lib, meta, scalar_run, vector_run, lanes):
        self.lib = lib
        self.meta = meta
        self.scalar_run = scalar_run
        self.vector_run = vector_run
        self.lanes = lanes


#: nfp -> _NativeModule | _Failure (per-process attach memo).
_ATTACHED: dict[str, object] = {}
#: One "native tier unavailable" remark per process, not per kernel.
_DEGRADED = False


def native_enabled() -> bool:
    return os.environ.get("REPRO_NATIVE", "1") != "0"


def tolerance_enabled() -> bool:
    return os.environ.get("REPRO_NATIVE_TOLERANCE", "") == "1"


def native_available() -> bool:
    """Enabled *and* a working host toolchain exists (probe memoized)."""
    return native_enabled() and find_toolchain() is not None


def native_cache_dir() -> str:
    env = os.environ.get("REPRO_NATIVE_CACHE_DIR")
    if env:
        return env
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro-vec", "native")


def native_cache_max() -> int:
    try:
        return max(1, int(os.environ.get("REPRO_NATIVE_CACHE_MAX", "512")))
    except ValueError:
        return 512


def native_batch_size() -> int:
    """Kernels per batched translation unit (``REPRO_NATIVE_BATCH``).

    Values of 0 or 1 disable batching — every kernel gets its own TU
    and ``cc`` invocation, the pre-batching behavior the corpus bench
    compares against.
    """
    try:
        return max(1, int(os.environ.get("REPRO_NATIVE_BATCH", "24")))
    except ValueError:
        return 24


def clear_attached() -> None:
    """Drop per-process attach memos (loaded libraries stay mapped)."""
    _ATTACHED.clear()


def reset_native_state() -> None:
    """Full per-process reset: memos, degradation flag, toolchain probe."""
    global _DEGRADED
    clear_attached()
    _DEGRADED = False
    reset_toolchain_memo()


def clear_native_artifacts(root: Optional[str] = None) -> int:
    """Purge the on-disk artifact cache; returns the number of ``.so``s."""
    root = root or native_cache_dir()
    removed = 0
    try:
        names = os.listdir(root)
    except OSError:
        return 0
    for f in names:
        if f.endswith(".so"):
            removed += 1
        if f.endswith((".so", ".json", ".c", ".lock", ".tmp")):
            try:
                os.unlink(os.path.join(root, f))
            except OSError:
                pass
    clear_attached()
    return removed


def _native_fingerprint(fp: str, tc: Toolchain) -> str:
    blob = f"{fp}|{tc.identity}|schema={NATIVE_SCHEMA}"
    return hashlib.sha256(blob.encode()).hexdigest()[:40]


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _diag(kernel: LoopKernel, message: str, warning: bool = False) -> None:
    from ..analysis.framework.passmanager import default_manager

    diags = default_manager().diagnostics
    (diags.warning if warning else diags.remark)("native", kernel.name, message)


def _note_degraded(kernel: LoopKernel) -> None:
    global _DEGRADED
    if _DEGRADED:
        return
    _DEGRADED = True
    _diag(
        kernel,
        f"-Rpass-missed=native: native tier unavailable "
        f"({toolchain_failure() or 'no toolchain'}); "
        "falling back to the NumPy/scalar tiers",
    )


# ---------------------------------------------------------------------------
# C emission
# ---------------------------------------------------------------------------

_CTYPE = {
    DType.F32: "float",
    DType.F64: "double",
    DType.I32: "int32_t",
    DType.I64: "int64_t",
    DType.BOOL: "uint8_t",
}

_SUFFIX = {
    DType.F32: "f32",
    DType.F64: "f64",
    DType.I32: "i32",
    DType.I64: "i64",
    DType.BOOL: "u8",
}

_CMP_OP = {
    CmpKind.LT: "<",
    CmpKind.LE: "<=",
    CmpKind.GT: ">",
    CmpKind.GE: ">=",
    CmpKind.EQ: "==",
    CmpKind.NE: "!=",
}

# The helpers encode numpy's exact operator semantics — see module doc.
_PRELUDE = """\
#include <stdint.h>
#include <math.h>

#define REPRO_VF_MAX 256

/* Bounds elision pays off twice: the fast body is a clean loop (no
 * early-exit oob branch), so the auto-vectorizer can work on it, and
 * the contract scan is a branchless compare-reduce that only pays for
 * itself if it runs SIMD.  GCC 12 enables neither at -O2, so force
 * -O3 on exactly those two functions.  The optimize attribute resets
 * command-line codegen flags, so -fwrapv and -ffp-contract=off (the
 * bit-identity contract of this tier) are restated explicitly. */
#if defined(__GNUC__) && !defined(__clang__)
#define REPRO_VECLOOP \
    __attribute__((optimize("O3", "-fwrapv", "-ffp-contract=off")))
#else
#define REPRO_VECLOOP
#endif

static inline int64_t repro_wrap(int64_t i, int64_t ext) {
    return i < 0 ? i + ext : i;
}
static inline int64_t repro_idx(int64_t i, int64_t ext, int64_t *oob) {
    if (i < 0) i += ext;
    if (i < 0 || i >= ext) { *oob = 1; return 0; }
    return i;
}
static inline float repro_sqrt_f32(float x, int64_t *fires) {
    if (x < 0.0f) ++*fires;
    return sqrtf(fabsf(x));
}
static inline double repro_sqrt_f64(double x, int64_t *fires) {
    if (x < 0.0) ++*fires;
    return sqrt(fabs(x));
}
static inline float repro_min_f32(float a, float b) {
    return (a < b || a != a) ? a : b;
}
static inline float repro_max_f32(float a, float b) {
    return (a > b || a != a) ? a : b;
}
static inline double repro_min_f64(double a, double b) {
    return (a < b || a != a) ? a : b;
}
static inline double repro_max_f64(double a, double b) {
    return (a > b || a != a) ? a : b;
}
static inline int32_t repro_min_i32(int32_t a, int32_t b) { return a < b ? a : b; }
static inline int32_t repro_max_i32(int32_t a, int32_t b) { return a > b ? a : b; }
static inline int64_t repro_min_i64(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t repro_max_i64(int64_t a, int64_t b) { return a > b ? a : b; }
static inline int32_t repro_abs_i32(int32_t a) {
    return a < 0 ? (int32_t)(0u - (uint32_t)a) : a;
}
static inline int64_t repro_abs_i64(int64_t a) {
    return a < 0 ? (int64_t)(0ull - (uint64_t)a) : a;
}
static inline int32_t repro_shl_i32(int32_t a, int32_t b) {
    return ((uint32_t)b < 32u) ? (int32_t)((uint32_t)a << b) : 0;
}
static inline int64_t repro_shl_i64(int64_t a, int64_t b) {
    return ((uint64_t)b < 64u) ? (int64_t)((uint64_t)a << b) : 0;
}
static inline int32_t repro_shr_i32(int32_t a, int32_t b) {
    return ((uint32_t)b < 32u) ? (a >> b) : (a < 0 ? -1 : 0);
}
static inline int64_t repro_shr_i64(int64_t a, int64_t b) {
    return ((uint64_t)b < 64u) ? (a >> b) : (a < 0 ? -1 : 0);
}
static inline float repro_sel_f32(uint8_t c, float t, float f) { return c ? t : f; }
static inline double repro_sel_f64(uint8_t c, double t, double f) { return c ? t : f; }
static inline int32_t repro_sel_i32(uint8_t c, int32_t t, int32_t f) { return c ? t : f; }
static inline int64_t repro_sel_i64(uint8_t c, int64_t t, int64_t f) { return c ? t : f; }
static inline uint8_t repro_sel_u8(uint8_t c, uint8_t t, uint8_t f) { return c ? t : f; }
"""


class _CEmitter:
    """Renders one kernel body to C, scalar or lane-blocked vector form.

    The emitter is *strict*: any shape it cannot reproduce with the
    interpreter's exact semantics raises :class:`NativeUnsupported`
    instead of emitting approximate code.
    """

    def __init__(self, kernel: LoopKernel, vector: bool = False,
                 lanes: frozenset = frozenset(), bounds=None, guards=None,
                 fast: bool = False):
        self.kernel = kernel
        self.vector = vector
        self.lanes = lanes
        #: BoundsInfo / GuardRangeInfo from the range-analysis passes,
        #: or None when ``REPRO_RANGES=0`` (no elision, no folding).
        self.bounds = bounds
        self.guards = guards
        #: Fast-body mode: contract-proven gathers/scatters are emitted
        #: raw (no ``repro_idx``).  Only sound behind the runtime
        #: contract scan recorded in :attr:`contract_checks`.
        self.fast = fast
        #: (index_array, affine, index_ext, target_ext) tuples the
        #: dispatcher's ``repro_contract_ok`` must verify.
        self.contract_checks: list[tuple[str, Affine, int, int]] = []
        self.elided_gathers = 0
        #: One event per elided access for the profitability model:
        #: (is_store, target_array, index_array, index_affine_repr).
        self.elide_events: list[tuple[bool, str, str, str]] = []
        self.elided_shifts = 0
        self.folded_guards = 0
        self._store_target = False
        self.depth = kernel.depth
        self.trips = [lp.trip for lp in kernel.loops]
        self.uses_oob = False
        self.lines: list[str] = []
        self.indent = 1
        self._nguard = 0
        self._ntmp = 0
        self._nsqrt = 0
        #: sqrt fire-counter locals of the statement being emitted
        #: (vector mode: one increment per call site per lane block,
        #: matching one guarded_sqrt() call per whole-array evaluation).
        self._stmt_sqrt_sites: list[str] = []

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def tmp(self) -> str:
        self._ntmp += 1
        return f"_t{self._ntmp}"

    # -- index arithmetic ---------------------------------------------------

    def itercode(self, level: int) -> str:
        if self.vector:
            # The inner level is the lane-blocked one; an enclosing
            # outer level reads the ``outer`` call parameter (the
            # entry runs one inner-loop instance per call).
            if self.depth > 1 and level == 0:
                return "_outer"
            return "(_s + _l)"
        if self.depth == 1:
            return "_i"
        return "_o" if level == 0 else "_i"

    def affine(self, af: Affine) -> str:
        parts = []
        for lvl, c in enumerate(af.coeffs):
            if lvl >= self.depth or c == 0:
                continue
            iv = self.itercode(lvl)
            parts.append(iv if c == 1 else f"({c} * {iv})")
        if af.offset or not parts:
            parts.append(str(af.offset))
        return "(" + " + ".join(parts) + ")"

    def rng(self, af: Affine) -> tuple[int, int]:
        lo = hi = af.offset
        for lvl, c in enumerate(af.coeffs):
            if lvl >= len(self.trips) or c == 0:
                continue
            span = c * (self.trips[lvl] - 1)
            lo += min(0, span)
            hi += max(0, span)
        return lo, hi

    def dim_index(self, array: str, d: int, ix) -> str:
        """Index code for one subscript dimension, bounds-disciplined.

        Statically in-bounds affine → raw expression; possibly negative
        (Python wrap) → ``repro_wrap``; statically out of range →
        refusal.  Indirect indices are runtime-checked by ``repro_idx``
        (wrap negatives, flag anything out of range).
        """
        decl = self.kernel.arrays[array]
        ext = decl.extents[d]
        if isinstance(ix, Affine):
            code = self.affine(ix)
            lo, hi = self.rng(ix)
            if lo >= 0 and hi < ext:
                return code
            if lo >= -ext and hi < ext:
                return f"repro_wrap({code}, {ext})"
            raise NativeUnsupported(
                f"subscript {d} of {array!r} spans [{lo}, {hi}] "
                f"vs extent {ext}"
            )
        assert isinstance(ix, Indirect)
        idecl = self.kernel.arrays.get(ix.array)
        if idecl is None or len(idecl.extents) != 1:
            raise NativeUnsupported(
                f"indirect through multi-dim array {ix.array!r}"
            )
        if not idecl.dtype.is_int:
            raise NativeUnsupported(
                f"indirect through non-integer array {ix.array!r}"
            )
        icode = self.dim_index(ix.array, 0, ix.index)
        loaded = f"((int64_t)b_{ix.array}[{icode}])"
        if (
            self.fast
            and self.bounds is not None
            and self.bounds.indirect_proven(ix, array, d)
        ):
            # Contract-proven in [0, ext): raw index, no wrap, no oob
            # bookkeeping.  The dispatcher only enters this body after
            # repro_contract_ok verified the recorded slice at run time.
            self.contract_checks.append(
                (ix.array, ix.index, idecl.extents[0], ext)
            )
            self.elided_gathers += 1
            self.elide_events.append(
                (self._store_target, array, ix.array, str(ix.index))
            )
            return loaded
        self.uses_oob = True
        return f"repro_idx({loaded}, {ext}, oob)"

    def flat_index(self, array: str, subscript) -> str:
        decl = self.kernel.arrays[array]
        if len(subscript) != len(decl.extents):
            raise NativeUnsupported(f"partial subscript on {array!r}")
        if len(decl.extents) == 1:
            return self.dim_index(array, 0, subscript[0])
        if len(decl.extents) == 2:
            i0 = self.dim_index(array, 0, subscript[0])
            i1 = self.dim_index(array, 1, subscript[1])
            return f"({i0} * {decl.extents[1]} + {i1})"
        raise NativeUnsupported(f"{len(decl.extents)}-d array {array!r}")

    # -- expressions --------------------------------------------------------

    def const(self, value, dtype: DType) -> str:
        ct = _CTYPE[dtype]
        if dtype is DType.BOOL:
            return f"((uint8_t){1 if value else 0})"
        if dtype.is_int:
            v = int(NP_DTYPE[dtype](value))
            if dtype is DType.I64 and v == -(2**63):
                return "((int64_t)(-9223372036854775807LL - 1))"
            return f"(({ct})({v}LL))"
        # Floats: round to the target width first, then print the exact
        # hex value so the C literal is bit-identical to the numpy const.
        f = float(NP_DTYPE[dtype](value))
        if f != f:
            return f"(({ct})NAN)"
        if f == float("inf"):
            return f"(({ct})INFINITY)"
        if f == float("-inf"):
            return f"(-({ct})INFINITY)"
        suffix = "F" if dtype is DType.F32 else ""
        return f"({f.hex()}{suffix})"

    def cast(self, code: str, src: DType, dst: DType) -> str:
        if src is dst:
            return code
        if dst is DType.BOOL:
            return f"((uint8_t)({code} != 0))"
        return f"(({_CTYPE[dst]}){code})"

    def scalar_ref(self, name: str) -> str:
        if not self.vector:
            return f"s_{name}"
        return f"L_{name}[_l]" if name in self.lanes else f"P_{name}"

    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            return self.const(e.value, e.dtype)
        if isinstance(e, ScalarRef):
            return self.scalar_ref(e.name)
        if isinstance(e, IterValue):
            return f"((int32_t){self.itercode(e.level)})"
        if isinstance(e, Load):
            return f"b_{e.array}[{self.flat_index(e.array, e.subscript)}]"
        if isinstance(e, Convert):
            return self.cast(self.expr(e.operand), e.operand.dtype, e.dtype)
        if isinstance(e, UnOp):
            return self.unop(e)
        if isinstance(e, BinOp):
            return self.binop(e)
        if isinstance(e, Compare):
            return self.compare(e)
        if isinstance(e, Select):
            c = self.expr(e.cond)
            t = self.cast(self.expr(e.if_true), e.if_true.dtype, e.dtype)
            f = self.cast(self.expr(e.if_false), e.if_false.dtype, e.dtype)
            # A helper *function*, not a ternary: np.where evaluates
            # both branches (the sqrt fire counter must see both).
            return f"repro_sel_{_SUFFIX[e.dtype]}({c}, {t}, {f})"
        raise NativeUnsupported(f"cannot emit {type(e).__name__}")

    def unop(self, e: UnOp) -> str:
        x = self.expr(e.operand)
        dt = e.dtype
        ct = _CTYPE[dt]
        if e.op is UnOpKind.NEG:
            return f"(-{x})" if dt.is_float else f"(({ct})(-{x}))"
        if e.op is UnOpKind.ABS:
            if dt is DType.F32:
                return f"fabsf({x})"
            if dt is DType.F64:
                return f"fabs({x})"
            return f"repro_abs_{_SUFFIX[dt]}({x})"
        if e.op is UnOpKind.SQRT:
            return f"repro_sqrt_{_SUFFIX[dt]}({x}, {self.sqrt_target()})"
        if e.op is UnOpKind.EXP:
            fn = "expf" if dt is DType.F32 else "exp"
            return f"{fn}({x})"
        if e.op is UnOpKind.NOT:
            return f"((uint8_t)(!{x}))"
        raise NativeUnsupported(f"unop {e.op.name}")

    def sqrt_target(self) -> str:
        """Fire-counter destination for one sqrt call site.

        Scalar mode counts per evaluation (one element per call, like
        the interpreter).  Vector mode gives each site a per-statement
        local folded to ≤1 increment per lane block — one guarded_sqrt
        call per whole-statement evaluation, like the numpy path.
        """
        if not self.vector:
            return "sqrt_fires"
        name = f"_sf{self._nsqrt}"
        self._nsqrt += 1
        self._stmt_sqrt_sites.append(name)
        return f"&{name}"

    def binop(self, e: BinOp) -> str:
        dt = e.dtype
        ct = _CTYPE[dt]
        if e.op in (BinOpKind.SHL, BinOpKind.SHR):
            # numpy shifts: operands promoted (not cast to the result
            # dtype), computed in the common width with guarded counts.
            wide = (
                DType.I64
                if DType.I64 in (e.lhs.dtype, e.rhs.dtype)
                else DType.I32
            )
            a = self.cast(self.expr(e.lhs), e.lhs.dtype, wide)
            b = self.cast(self.expr(e.rhs), e.rhs.dtype, wide)
            width = 64 if wide is DType.I64 else 32
            if self.guards is not None and self.guards.shift_safe(e, width):
                # Count proven in [0, width) — and for SHL a proven
                # nonnegative operand — so the guarded wrapper is
                # redundant and a plain C shift is well-defined with
                # identical semantics.
                self.elided_shifts += 1
                wct = _CTYPE[wide]
                uct = "uint64_t" if wide is DType.I64 else "uint32_t"
                if e.op is BinOpKind.SHL:
                    code = f"(({wct})(({uct}){a} << {b}))"
                else:
                    code = f"({a} >> {b})"
                return self.cast(code, wide, dt)
            fn = "shl" if e.op is BinOpKind.SHL else "shr"
            code = f"repro_{fn}_{_SUFFIX[wide]}({a}, {b})"
            return self.cast(code, wide, dt)
        a = self.cast(self.expr(e.lhs), e.lhs.dtype, dt)
        b = self.cast(self.expr(e.rhs), e.rhs.dtype, dt)
        if e.op is BinOpKind.DIV:
            if dt.is_int:
                # np.divide(int, int) → float64, then C-cast back.
                return f"(({ct})((double){a} / (double){b}))"
            return f"({a} / {b})"
        if e.op in (BinOpKind.MIN, BinOpKind.MAX):
            fn = "min" if e.op is BinOpKind.MIN else "max"
            return f"repro_{fn}_{_SUFFIX[dt]}({a}, {b})"
        if e.op in (BinOpKind.ADD, BinOpKind.SUB, BinOpKind.MUL):
            op = {BinOpKind.ADD: "+", BinOpKind.SUB: "-", BinOpKind.MUL: "*"}[e.op]
            code = f"({a} {op} {b})"
            return code if dt.is_float else f"(({ct}){code})"
        if e.op in (BinOpKind.AND, BinOpKind.OR, BinOpKind.XOR):
            op = {BinOpKind.AND: "&", BinOpKind.OR: "|", BinOpKind.XOR: "^"}[e.op]
            return f"(({ct})({a} {op} {b}))"
        raise NativeUnsupported(f"binop {e.op.name}")

    def compare(self, e: Compare) -> str:
        a, b = self.expr(e.lhs), self.expr(e.rhs)
        op = _CMP_OP[e.op]
        if e.lhs.dtype.is_float or e.rhs.dtype.is_float:
            # numpy promotes mixed compares to float64; comparing two
            # f32 in double is exact, so one rule covers every case.
            a, b = f"((double){a})", f"((double){b})"
        return f"((uint8_t)({a} {op} {b}))"

    # -- statements: scalar entry -------------------------------------------

    def _emit_tracked(self, fn):
        """Run an emission closure; report whether it added oob checks."""
        before = self.uses_oob
        code = fn()
        return code, self.uses_oob != before

    def stmt_scalar(self, stmt) -> None:
        if isinstance(stmt, ArrayStore):
            decl = self.kernel.arrays[stmt.array]
            val, val_oob = self._emit_tracked(
                lambda: self.cast(
                    self.expr(stmt.value), stmt.value.dtype, decl.dtype
                )
            )
            self._store_target = True
            try:
                idx, idx_oob = self._emit_tracked(
                    lambda: self.flat_index(stmt.array, stmt.subscript)
                )
            finally:
                self._store_target = False
            if not (val_oob or idx_oob):
                self.emit(f"b_{stmt.array}[{idx}] = {val};")
                return
            # Python evaluates RHS, then the index, and raises before
            # storing on an out-of-range index — mirror that order.
            v, ixv = self.tmp(), self.tmp()
            self.emit("{")
            self.emit(f"    {_CTYPE[decl.dtype]} {v} = {val};")
            if val_oob:
                self.emit("    if (*oob) goto repro_done;")
            self.emit(f"    int64_t {ixv} = {idx};")
            if idx_oob:
                self.emit("    if (*oob) goto repro_done;")
            self.emit(f"    b_{stmt.array}[{ixv}] = {v};")
            self.emit("}")
        elif isinstance(stmt, ScalarAssign):
            decl = self.kernel.scalars[stmt.name]
            val, val_oob = self._emit_tracked(
                lambda: self.cast(
                    self.expr(stmt.value), stmt.value.dtype, decl.dtype
                )
            )
            self.emit(f"s_{stmt.name} = {val};")
            if val_oob:
                self.emit("if (*oob) goto repro_done;")
        elif isinstance(stmt, IfBlock):
            k = self._nguard
            self._nguard += 1
            fold = self.guards.fold_of(stmt) if self.guards is not None else None
            if fold is None:
                cond, cond_oob = self._emit_tracked(
                    lambda: self.expr(stmt.cond)
                )
            else:
                # Proven-constant, side-effect-free condition: fold to a
                # literal (the dead arm compiles away); all guard
                # bookkeeping stays for counter parity.
                cond, cond_oob = ("1" if fold else "0"), False
                self.folded_guards += 1
            self.emit(
                f"if (!gseen[{k}]) {{ gorder[*gcount] = {k}; *gcount += 1; }}"
            )
            self.emit(f"gseen[{k}] += 1;")
            if cond_oob:
                c = self.tmp()
                self.emit(f"uint8_t {c} = {cond};")
                self.emit("if (*oob) goto repro_done;")
                cond = c
            self.emit(f"if ({cond}) {{")
            self.indent += 1
            self.emit(f"gtaken[{k}] += 1;")
            for s in stmt.then_body:
                self.stmt_scalar(s)
            self.indent -= 1
            if stmt.else_body:
                self.emit("} else {")
                self.indent += 1
                for s in stmt.else_body:
                    self.stmt_scalar(s)
                self.indent -= 1
            self.emit("}")
        else:
            raise NativeUnsupported(f"cannot emit {type(stmt).__name__}")

    def gen_scalar(self, name: str = "repro_scalar", static: bool = False) -> str:
        k = self.kernel
        linkage = "static " if static else ""
        pad = " " * len(f"{linkage}int64_t {name}(")
        self.lines = [
            f"{linkage}int64_t {name}(void **bufs, void **scalars,",
            f"{pad}int64_t inner_trip, int64_t outer_trip,",
            f"{pad}int64_t *gseen, int64_t *gtaken,",
            f"{pad}int64_t *gorder, int64_t *gcount,",
            f"{pad}int64_t *sqrt_fires, int64_t *oob) {{",
        ]
        for j, (name, decl) in enumerate(k.arrays.items()):
            ct = _CTYPE[decl.dtype]
            self.emit(f"{ct} *b_{name} = ({ct} *)bufs[{j}];")
        for j, (name, decl) in enumerate(k.scalars.items()):
            ct = _CTYPE[decl.dtype]
            self.emit(f"{ct} s_{name} = *({ct} *)scalars[{j}];")
        self.emit("(void)gseen; (void)gtaken; (void)gorder; (void)gcount;")
        self.emit("(void)sqrt_fires; (void)oob;")
        if self.depth == 1:
            self.emit("(void)outer_trip;")
            self.emit("for (int64_t _i = 0; _i < inner_trip; _i++) {")
            self.indent += 1
        else:
            self.emit("for (int64_t _o = 0; _o < outer_trip; _o++) {")
            self.indent += 1
            self.emit("for (int64_t _i = 0; _i < inner_trip; _i++) {")
            self.indent += 1
        for s in k.body:
            self.stmt_scalar(s)
        self.indent -= 1
        self.emit("}")
        if self.depth > 1:
            self.indent -= 1
            self.emit("}")
        if self.uses_oob:
            self.emit("repro_done:;")
        for j, (name, decl) in enumerate(k.scalars.items()):
            ct = _CTYPE[decl.dtype]
            self.emit(f"*({ct} *)scalars[{j}] = s_{name};")
        self.emit("return inner_trip * outer_trip;")
        self.lines.append("}")
        return "\n".join(self.lines)

    # -- statements: vector entry -------------------------------------------

    def stmt_vector(self, si: int, stmt) -> None:
        """One statement as a two-phase lane block.

        Phase 1 evaluates the whole RHS for all ``vf`` lanes into a
        temp; phase 2 stores in lane order — exactly numpy's
        whole-RHS-then-assign shape, so same-statement anti-dependences
        read pre-store values and duplicate store indices resolve
        last-lane-wins.
        """
        if isinstance(stmt, ArrayStore):
            decl = self.kernel.arrays[stmt.array]
            target_dt = decl.dtype
            store = True
        elif isinstance(stmt, ScalarAssign):
            if stmt.name not in self.lanes:
                raise NativeUnsupported(
                    f"assignment to non-lane scalar {stmt.name!r}"
                )
            decl = self.kernel.scalars[stmt.name]
            target_dt = decl.dtype
            store = False
        else:
            raise NativeUnsupported(
                f"{type(stmt).__name__} in vector entry"
            )
        self._stmt_sqrt_sites = []
        val, val_oob = self._emit_tracked(
            lambda: self.cast(self.expr(stmt.value), stmt.value.dtype, target_dt)
        )
        if store:
            idx, idx_oob = self._emit_tracked(
                lambda: self.flat_index(stmt.array, stmt.subscript)
            )
        self.emit("{")
        self.indent += 1
        for site in self._stmt_sqrt_sites:
            self.emit(f"int64_t {site} = 0;")
        self.emit(f"{_CTYPE[target_dt]} _v{si}[REPRO_VF_MAX];")
        self.emit("for (int64_t _l = 0; _l < vf; _l++) {")
        self.indent += 1
        self.emit(f"_v{si}[_l] = {val};")
        if val_oob:
            self.emit("if (*oob) goto repro_done;")
        self.indent -= 1
        self.emit("}")
        for site in self._stmt_sqrt_sites:
            self.emit(f"if ({site}) {{ *sqrt_fires += 1; }}")
        self.emit("for (int64_t _l = 0; _l < vf; _l++) {")
        self.indent += 1
        if store:
            if idx_oob:
                ixv = self.tmp()
                self.emit(f"int64_t {ixv} = {idx};")
                self.emit("if (*oob) goto repro_done;")
                self.emit(f"b_{stmt.array}[{ixv}] = _v{si}[_l];")
            else:
                self.emit(f"b_{stmt.array}[{idx}] = _v{si}[_l];")
        else:
            self.emit(f"L_{stmt.name}[_l] = _v{si}[_l];")
        self.indent -= 1
        self.emit("}")
        self.indent -= 1
        self.emit("}")

    def gen_vector(self, name: str = "repro_vector") -> str:
        k = self.kernel
        if self.depth > 2:
            raise NativeUnsupported("vector entry requires depth ≤ 2")
        if any(isinstance(s, IfBlock) for s in k.stmts()):
            raise NativeUnsupported("guarded statements in vector entry")
        pad = " " * len(f"int64_t {name}(")
        self.lines = [
            f"int64_t {name}(void **bufs, void **lanes,",
            f"{pad}int64_t vf, int64_t vec_trip, int64_t _outer,",
            f"{pad}int64_t *sqrt_fires, int64_t *oob) {{",
        ]
        for j, (name, decl) in enumerate(k.arrays.items()):
            ct = _CTYPE[decl.dtype]
            self.emit(f"{ct} *b_{name} = ({ct} *)bufs[{j}];")
        for j, (name, decl) in enumerate(k.scalars.items()):
            ct = _CTYPE[decl.dtype]
            if name in self.lanes:
                self.emit(f"{ct} *L_{name} = ({ct} *)lanes[{j}];")
            else:
                self.emit(f"{ct} P_{name} = *({ct} *)lanes[{j}];")
        self.emit("(void)sqrt_fires; (void)oob; (void)_outer;")
        self.emit("for (int64_t _s = 0; _s < vec_trip; _s += vf) {")
        self.indent += 1
        for si, s in enumerate(k.body):
            self.stmt_vector(si, s)
        self.indent -= 1
        self.emit("}")
        if self.uses_oob:
            self.emit("repro_done:;")
        self.emit("return vec_trip / vf;")
        self.lines.append("}")
        return "\n".join(self.lines)


def _lane_scalars(kernel: LoopKernel) -> set[str]:
    """Scalars the vector entry lane-expands (reductions + privates)."""
    from ..analysis.framework.passmanager import default_manager

    infos = default_manager().get("scalars", kernel)
    return {
        n
        for n, i in infos.items()
        if i.klass in (ScalarClass.REDUCTION, ScalarClass.PRIVATE)
    }


def _ranges_info(kernel: LoopKernel):
    """(BoundsInfo, GuardRangeInfo) for codegen, or (None, None) when
    the range-analysis consumers are disabled (``REPRO_RANGES=0``)."""
    from ..analysis.framework.passmanager import default_manager
    from ..analysis.framework.ranges import (
        BoundsCheckPass,
        GuardRangePass,
        ranges_enabled,
    )

    if not ranges_enabled():
        return None, None
    am = default_manager()
    return am.get(BoundsCheckPass, kernel), am.get(GuardRangePass, kernel)


def _emit_contract_fn(
    kernel: LoopKernel, checks, name: str = "repro_contract_ok"
) -> str:
    """``repro_contract_ok``: runtime validation of the data contract
    every fast-body elision leans on.

    For each elided gather/scatter, the index-array slice the loop nest
    will actually read (its affine range over the *runtime* trips) is
    scanned; any content outside ``[0, target_extent)`` — or a slice
    leaving the index array itself — selects the guarded body instead.
    The scan covers the stride-superset ``[lo, hi]``, which is
    conservative: it can only send borderline inputs to the (always
    correct) guarded body.
    """
    arr_pos = {name: j for j, name in enumerate(kernel.arrays)}
    seen: set = set()
    by_arr: dict[str, list] = {}
    for arr, af, iext, text in checks:
        key = (arr, str(af), text)
        if key not in seen:
            seen.add(key)
            by_arr.setdefault(arr, []).append((af, iext, text))
    pad = " " * len(f"static int {name}(")
    lines = [
        "REPRO_VECLOOP",
        f"static int {name}(void **bufs, int64_t inner_trip,",
        f"{pad}int64_t outer_trip) {{",
        "    (void)bufs; (void)inner_trip; (void)outer_trip;",
    ]
    for name in sorted(by_arr):
        ct = _CTYPE[kernel.arrays[name].dtype]
        lines.append(
            f"    const {ct} *b_{name} = "
            f"(const {ct} *)bufs[{arr_pos[name]}];"
        )
    depth = kernel.depth
    for arr in sorted(by_arr):
        group = by_arr[arr]
        # One scan per index array over the hull of the slices its
        # elided accesses read, against the strictest target extent —
        # both merges are conservative (can only reject more inputs).
        text_min = min(text for _af, _ie, text in group)
        uct = "uint64_t" if kernel.arrays[arr].dtype is DType.I64 else "uint32_t"
        lines.append("    {")
        lines.append("        int64_t s_lo = INT64_MAX, s_hi = INT64_MIN;")
        for af, iext, _text in group:
            lines.append("        {")
            lines.append(f"            int64_t lo = {af.offset}, hi = {af.offset};")
            for lvl, c in enumerate(af.coeffs):
                if lvl >= depth or c == 0:
                    continue
                trip = "inner_trip" if (depth == 1 or lvl == 1) else "outer_trip"
                lines.append(
                    f"            {{ int64_t span = {c} * ({trip} - 1); "
                    "if (span < 0) lo += span; else hi += span; }"
                )
            lines.append(f"            if (lo < 0 || hi >= {iext}) return 0;")
            lines.append("            if (lo < s_lo) s_lo = lo;")
            lines.append("            if (hi > s_hi) s_hi = hi;")
            lines.append("        }")
        # Branchless unsigned compare (negative wraps above any valid
        # extent) accumulated with |= — no early exit, so -O2's loop
        # vectorizer turns the scan into a SIMD compare-reduce.
        lines.append(f"        {uct} bad = 0;")
        lines.append("        for (int64_t _j = s_lo; _j <= s_hi; _j++)")
        lines.append(
            f"            bad |= (({uct})b_{arr}[_j] >= ({uct}){text_min});"
        )
        lines.append("        if (bad) return 0;")
        lines.append("    }")
    lines.append("    return 1;")
    lines.append("}")
    return "\n".join(lines)


def _dispatch_src(prefix: str) -> str:
    """The dispatcher entry: contract scan → fast or guarded body."""
    args = (
        "bufs, scalars, inner_trip, outer_trip, "
        "gseen, gtaken, gorder, gcount, sqrt_fires, oob"
    )
    pad = " " * len(f"int64_t {prefix}scalar(")
    return (
        f"int64_t {prefix}scalar(void **bufs, void **scalars,\n"
        f"{pad}int64_t inner_trip, int64_t outer_trip,\n"
        f"{pad}int64_t *gseen, int64_t *gtaken,\n"
        f"{pad}int64_t *gorder, int64_t *gcount,\n"
        f"{pad}int64_t *sqrt_fires, int64_t *oob) {{\n"
        f"    if ({prefix}contract_ok(bufs, inner_trip, outer_trip))\n"
        f"        return {prefix}scalar_fast({args});\n"
        f"    return {prefix}scalar_guarded({args});\n"
        "}"
    )


def _emit_kernel_body(
    kernel: LoopKernel, prefix: str = "repro_"
) -> tuple[str, list, str, dict]:
    """(entry functions for one kernel, lane-scalar names, vector entry
    status, elision info) — everything in the translation unit except
    the shared prelude.  Exported symbols are ``{prefix}scalar`` and
    (when supported) ``{prefix}vector``; batched units give each member
    a distinct prefix so N kernels share one ``cc`` invocation.

    The scalar entry is mandatory — a refusal there propagates and no
    artifact is built.  The vector entry is best-effort: its refusal is
    recorded as ``unsupported: why`` in the sidecar meta.

    With range analysis enabled and at least one contract-proven
    gather/scatter, the scalar entry becomes a dispatcher: a runtime
    contract scan picks an unguarded fast body (raw indirect indices,
    no oob plumbing) or the fully guarded body — bit-identical either
    way, since the scan proves exactly what the elided checks would
    have verified per element.
    """
    bounds, guards = _ranges_info(kernel)
    fast = _CEmitter(
        kernel, vector=False, bounds=bounds, guards=guards, fast=True
    )
    fast_src = fast.gen_scalar(name=f"{prefix}scalar_fast", static=True)
    # Profitability gate (cost model, not soundness): the dispatcher
    # pays a per-call contract scan, which only amortizes when a *load*
    # check is elided — a gathered load's bounds check sits on the
    # critical path and blocks vectorization of the whole body, while a
    # scatter store's check overlaps with the store latency and is
    # effectively free.  A scatter is tolerated only as the store half
    # of a read-modify-write of an elided load (same array, same index
    # expression: the line is already resident); an independent scatter
    # stream keeps the plain guarded body — measured on the suite,
    # eliding those is a net loss.
    loads = {ev[1:] for ev in fast.elide_events if not ev[0]}
    stores = [ev[1:] for ev in fast.elide_events if ev[0]]
    profitable = bool(loads) and all(s in loads for s in stores)
    if profitable:
        # The unguarded body has no early exits left; let it vectorize.
        fast_src = "REPRO_VECLOOP\n" + fast_src
        guarded_src = _CEmitter(
            kernel, vector=False, bounds=bounds, guards=guards
        ).gen_scalar(name=f"{prefix}scalar_guarded", static=True)
        contract_src = _emit_contract_fn(
            kernel, fast.contract_checks, name=f"{prefix}contract_ok"
        )
        scalar_src = "\n\n".join(
            [guarded_src, fast_src, contract_src, _dispatch_src(prefix)]
        )
        elided = {
            "gathers": fast.elided_gathers,
            "shifts": fast.elided_shifts,
            "folded_guards": fast.folded_guards,
        }
    else:
        plain = _CEmitter(kernel, vector=False, bounds=bounds, guards=guards)
        scalar_src = plain.gen_scalar(name=f"{prefix}scalar")
        elided = {
            "gathers": 0,
            "shifts": plain.elided_shifts,
            "folded_guards": plain.folded_guards,
        }
    lanes = _lane_scalars(kernel)
    try:
        vector_src = _CEmitter(
            kernel, vector=True, lanes=frozenset(lanes), guards=guards
        ).gen_vector(name=f"{prefix}vector")
        vector_status = "candidate"
    except NativeUnsupported as exc:
        vector_src = ""
        vector_status = f"unsupported: {exc}"
    if vector_src:
        scalar_src += "\n\n" + vector_src
    return scalar_src, sorted(lanes), vector_status, elided


def _emit_translation_unit(kernel: LoopKernel) -> tuple[str, list, str, dict]:
    """One-kernel TU: shared prelude + the kernel's entry functions."""
    body, lanes, vector_status, elided = _emit_kernel_body(kernel)
    header = f"/* kernel {kernel.name!r} — generated by repro.sim.native */\n"
    return header + _PRELUDE + "\n" + body + "\n", lanes, vector_status, elided


# ---------------------------------------------------------------------------
# Artifact cache: build once (flock + atomic install), attach many
# ---------------------------------------------------------------------------


def _paths(root: str, nfp: str) -> dict[str, str]:
    return {
        "so": os.path.join(root, nfp + ".so"),
        "meta": os.path.join(root, nfp + ".json"),
        "c": os.path.join(root, nfp + ".c"),
        "lock": os.path.join(root, nfp + ".lock"),
    }


def _evict(root: str, nfp: str) -> None:
    # The .lock file is deliberately left in place: another process may
    # hold an flock on it, and unlinking would let a third process
    # create a second lock file — two winners of a one-build race.
    p = _paths(root, nfp)
    for key in ("so", "meta", "c"):
        try:
            os.unlink(p[key])
        except OSError:
            pass


def _prune(root: str) -> None:
    """LRU-bound the artifact cache by ``.so`` mtime."""
    cap = native_cache_max()
    try:
        sos = [
            f
            for f in os.listdir(root)
            if f.endswith(".so") and not f.startswith(".")
        ]
    except OSError:
        return
    if len(sos) <= cap:
        return

    def mtime(f: str) -> float:
        try:
            return os.path.getmtime(os.path.join(root, f))
        except OSError:
            return 0.0

    sos.sort(key=mtime)
    for f in sos[: len(sos) - cap]:
        _evict(root, f[:-3])


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)


def _load_meta(root: str, nfp: str, fp: str, tc: Toolchain) -> Optional[dict]:
    """Validated sidecar meta, or None (evicting anything corrupt).

    Corruption-safe by construction: a truncated ``.so``, a foreign
    file, a half-installed pair (``.so`` without meta or vice versa),
    or unparsable JSON is evicted and reported as a miss — never fatal.
    """
    p = _paths(root, nfp)
    # Meta first: batch members have no ``<nfp>.so`` of their own — the
    # meta's ``so`` key names the shared ``batch-*.so`` they live in.
    if not os.path.exists(p["meta"]):
        if os.path.exists(p["so"]):
            _evict(root, nfp)  # half-install: .so without meta
        return None
    try:
        with open(p["meta"]) as fh:
            meta = json.load(fh)
        ok = (
            isinstance(meta, dict)
            and meta.get("schema") == NATIVE_SCHEMA
            and meta.get("kernel_fp") == fp
            and meta.get("toolchain") == tc.identity
        )
        if ok:
            so_path = _so_path(root, nfp, meta)
            ok = os.path.exists(so_path) and meta.get(
                "so_sha256"
            ) == _sha256_file(so_path)
    except (OSError, ValueError):
        ok = False
    if not ok:
        # Evicts the member's own files only; a shared batch .so other
        # members still reference is never unlinked here (LRU pruning
        # owns its lifetime, and orphaned members self-evict as misses).
        _evict(root, nfp)
        return None
    return meta


def _so_path(root: str, nfp: str, meta: dict) -> str:
    """The shared object a validated meta points at (own or batch)."""
    return os.path.join(root, meta.get("so") or (nfp + ".so"))


def _build_artifact(
    kernel: LoopKernel, fp: str, tc: Toolchain, root: str, nfp: str
) -> dict:
    """Emit, compile, verify, and atomically install one artifact.

    Serialized across processes by an exclusive ``flock`` on the
    per-artifact lock file (auto-released if the holder dies);
    re-checks the cache after acquiring so the losers of a build race
    attach the winner's artifact instead of rebuilding.
    """
    t0 = time.perf_counter()
    p = _paths(root, nfp)
    with open(p["lock"], "w") as lk:
        fcntl.flock(lk.fileno(), fcntl.LOCK_EX)
        meta = _load_meta(root, nfp, fp, tc)
        if meta is not None:
            return meta
        try:
            source, lanes, vector_status, elided = _emit_translation_unit(
                kernel
            )
        except NativeUnsupported:
            raise
        except Exception as exc:
            raise NativeUnsupported(f"codegen failed: {exc!r}") from exc
        _atomic_write_text(p["c"], source)
        tmp_so = os.path.join(root, f".{nfp}.{os.getpid()}.so.tmp")
        try:
            compile_shared(tc, p["c"], tmp_so)
            # Verify on the tmp library (unique path → guaranteed-fresh
            # dlopen) before anything is installed.
            lib = ctypes.CDLL(tmp_so)
            runner = _make_scalar_runner(lib, kernel)
            verdict, detail = _verify_scalar(kernel, fp, runner)
            if vector_status == "candidate":
                try:
                    vrun = _make_vector_runner(lib, kernel, frozenset(lanes))
                    vector_status = _verify_vector(kernel, vrun)
                except Exception as exc:
                    vector_status = f"unsupported: wrapper failed ({exc!r})"
            os.replace(tmp_so, p["so"])
        finally:
            try:
                os.unlink(tmp_so)
            except OSError:
                pass
        meta = {
            "schema": NATIVE_SCHEMA,
            "kernel": kernel.name,
            "kernel_fp": fp,
            "toolchain": tc.identity,
            "so_sha256": _sha256_file(p["so"]),
            "scalar": verdict,
            "scalar_detail": detail,
            "vector": vector_status,
            "lanes": lanes,
            "elided": elided,
        }
        # Meta is installed last: a .so without meta is treated as a
        # half-install and evicted, never trusted.
        _atomic_write_text(p["meta"], json.dumps(meta, indent=1, sort_keys=True))
    _compile._STATS.native_build_s += time.perf_counter() - t0
    return meta


# ---------------------------------------------------------------------------
# Batched builds: N kernels per translation unit, one cc invocation
# ---------------------------------------------------------------------------


def prebuild_native(kernels) -> dict[str, str]:
    """Batch-compile native artifacts for ``kernels`` ahead of a sweep.

    Renders up to :func:`native_batch_size` kernels into one
    translation unit and invokes ``cc`` once per batch — the dominant
    cost of a corpus-cold sweep is the per-kernel compiler process, so
    this is where the ≥3× corpus throughput comes from.  Every member
    keeps the single-kernel contract: its own fingerprint-keyed sidecar
    meta (pointing at the shared ``batch-*.so`` via the ``so`` key and
    at its symbols via ``prefix``), its own interpreter self-check
    before install, and individual demotion — a mismatching member is
    recorded demoted without poisoning its batchmates.

    Returns ``{kernel.name: status}`` where status is ``"cached"``
    (artifact already present), a self-check verdict (``"exact"`` /
    ``"tolerance"`` / ``"mismatch"``), ``"unsupported: …"`` (static
    codegen refusal — the per-kernel path will memoize the failure), or
    ``"deferred: …"`` (batch compile failed; members fall back to
    per-kernel builds on demand, isolating any culprit).  Best-effort
    by design: an empty result simply means every kernel takes the
    per-kernel path.
    """
    out: dict[str, str] = {}
    if not native_enabled() or native_batch_size() <= 1:
        return out
    tc = find_toolchain()
    if tc is None:
        return out
    root = native_cache_dir()
    os.makedirs(root, exist_ok=True)
    todo: list[tuple[LoopKernel, str, str]] = []
    seen_nfp: set[str] = set()
    for kern in kernels:
        fp = _compile._cache_fp(kern)
        nfp = _native_fingerprint(fp, tc)
        if nfp in seen_nfp:
            out[kern.name] = "cached"
            continue
        if nfp in _ATTACHED or os.path.exists(_paths(root, nfp)["meta"]):
            out[kern.name] = "cached"
            seen_nfp.add(nfp)
            continue
        seen_nfp.add(nfp)
        todo.append((kern, fp, nfp))
    size = native_batch_size()
    for start in range(0, len(todo), size):
        out.update(_build_batch(todo[start : start + size], tc, root))
    return out


def _build_batch(
    members: list, tc: Toolchain, root: str
) -> dict[str, str]:
    """Emit, compile, verify, and install one batched translation unit."""
    t0 = time.perf_counter()
    statuses: dict[str, str] = {}
    emitted = []
    for j, (kern, fp, nfp) in enumerate(members):
        prefix = f"k{j}_"
        try:
            body, lanes, vstatus, elided = _emit_kernel_body(kern, prefix)
        except NativeUnsupported as exc:
            statuses[kern.name] = f"unsupported: {exc}"
            continue
        except Exception as exc:
            statuses[kern.name] = f"unsupported: codegen failed {exc!r}"
            continue
        emitted.append((kern, fp, nfp, prefix, body, lanes, vstatus, elided))
    if not emitted:
        return statuses
    bfp = hashlib.sha256(
        "|".join(nfp for _k, _f, nfp, *_rest in emitted).encode()
    ).hexdigest()[:40]
    tag = f"batch-{bfp}"
    p = _paths(root, tag)
    with open(p["lock"], "w") as lk:
        fcntl.flock(lk.fileno(), fcntl.LOCK_EX)
        if all(
            os.path.exists(_paths(root, nfp)["meta"])
            for _k, _f, nfp, *_rest in emitted
        ):
            # A concurrent builder won the race for every member.
            for kern, _fp, _nfp, *_rest in emitted:
                statuses[kern.name] = "cached"
            return statuses
        header = (
            f"/* batch of {len(emitted)} kernels — "
            "generated by repro.sim.native */\n"
        )
        parts = [header + _PRELUDE]
        for kern, _fp, _nfp, _prefix, body, *_rest in emitted:
            parts.append(f"/* kernel {kern.name!r} */\n" + body)
        _atomic_write_text(p["c"], "\n\n".join(parts) + "\n")
        tmp_so = os.path.join(root, f".{tag}.{os.getpid()}.so.tmp")
        try:
            try:
                compile_shared(tc, p["c"], tmp_so)
            except ToolchainError as exc:
                # The combined TU failed to build.  Defer every member
                # to the per-kernel path, which isolates any culprit
                # with its own diagnostics.
                for kern, _fp, _nfp, *_rest in emitted:
                    statuses[kern.name] = f"deferred: {exc.detail()}"
                return statuses
            lib = ctypes.CDLL(tmp_so)
            checked = []
            for kern, fp, nfp, prefix, _body, lanes, vstatus, elided in emitted:
                runner = _make_scalar_runner(
                    lib, kern, symbol=f"{prefix}scalar"
                )
                verdict, detail = _verify_scalar(kern, fp, runner)
                if vstatus == "candidate":
                    try:
                        vrun = _make_vector_runner(
                            lib, kern, frozenset(lanes), symbol=f"{prefix}vector"
                        )
                        vstatus = _verify_vector(kern, vrun)
                    except Exception as exc:
                        vstatus = f"unsupported: wrapper failed ({exc!r})"
                checked.append(
                    (kern, fp, nfp, prefix, lanes, vstatus, elided, verdict, detail)
                )
            os.replace(tmp_so, p["so"])
        finally:
            try:
                os.unlink(tmp_so)
            except OSError:
                pass
        so_sha = _sha256_file(p["so"])
        for kern, fp, nfp, prefix, lanes, vstatus, elided, verdict, detail in checked:
            meta = {
                "schema": NATIVE_SCHEMA,
                "kernel": kern.name,
                "kernel_fp": fp,
                "toolchain": tc.identity,
                "so": f"{tag}.so",
                "prefix": prefix,
                "so_sha256": so_sha,
                "scalar": verdict,
                "scalar_detail": detail,
                "vector": vstatus,
                "lanes": lanes,
                "elided": elided,
            }
            _atomic_write_text(
                _paths(root, nfp)["meta"],
                json.dumps(meta, indent=1, sort_keys=True),
            )
            statuses[kern.name] = verdict
    _compile._STATS.native_build_s += time.perf_counter() - t0
    _prune(root)
    return statuses


def _attach(kernel: LoopKernel, fp: str, tc: Toolchain, nfp: str):
    """Memoized attach: load (building if needed) the kernel's artifact."""
    hit = _ATTACHED.get(nfp)
    if hit is not None:
        return hit
    root = native_cache_dir()
    os.makedirs(root, exist_ok=True)
    result = None
    for attempt in (0, 1):
        try:
            meta = _load_meta(root, nfp, fp, tc)
            if meta is None:
                meta = _build_artifact(kernel, fp, tc, root, nfp)
        except NativeUnsupported as exc:
            _diag(kernel, f"-Rpass-missed=native: {exc}")
            result = _Failure(str(exc))
            break
        except ToolchainError as exc:
            _diag(kernel, f"native build failed: {exc.detail()}", warning=True)
            result = _Failure(exc.detail())
            break
        so_path = _so_path(root, nfp, meta)
        try:
            lib = ctypes.CDLL(so_path)
            result = _module_from(lib, meta, kernel)
        except (OSError, AttributeError) as exc:
            # Unloadable artifact (truncated by a crash, foreign file,
            # a batch .so missing this member's symbols): evict and
            # rebuild once, then give up gracefully.
            _evict(root, nfp)
            if attempt == 0:
                continue
            _diag(
                kernel,
                f"native artifact unloadable after rebuild: {exc!r}",
                warning=True,
            )
            result = _Failure(f"artifact unloadable: {exc!r}")
        break
    assert result is not None
    if isinstance(result, _NativeModule):
        try:
            os.utime(_so_path(root, nfp, result.meta))  # LRU recency
        except OSError:
            pass
        _prune(root)
    _ATTACHED[nfp] = result
    return result


def _module_from(lib, meta: dict, kernel: LoopKernel) -> _NativeModule:
    prefix = meta.get("prefix") or "repro_"
    scalar_run = _make_scalar_runner(lib, kernel, symbol=f"{prefix}scalar")
    lanes = frozenset(meta.get("lanes", ()))
    vector_run = None
    if meta.get("vector") == "exact":
        vector_run = _make_vector_runner(
            lib, kernel, lanes, symbol=f"{prefix}vector"
        )
    return _NativeModule(lib, meta, scalar_run, vector_run, lanes)


# ---------------------------------------------------------------------------
# ctypes wrappers
# ---------------------------------------------------------------------------

_I64P = ctypes.POINTER(ctypes.c_int64)
_VOIDPP = ctypes.POINTER(ctypes.c_void_p)


def _data_ptr(arr: np.ndarray) -> int:
    # ~3x cheaper than arr.ctypes.data (which builds a helper object
    # per access); read-only arrays fall back to the slow path.
    try:
        return ctypes.addressof(ctypes.c_char.from_buffer(arr))
    except (TypeError, ValueError):
        return arr.ctypes.data


def _marshal_bufs(arr_decls, bufs):
    n = len(arr_decls)
    bufp = (ctypes.c_void_p * max(1, n))()
    for j, (name, decl) in enumerate(arr_decls):
        arr = bufs.get(name)
        if (
            not isinstance(arr, np.ndarray)
            or arr.dtype != NP_DTYPE[decl.dtype]
            or not arr.flags["C_CONTIGUOUS"]
        ):
            raise CompileError(f"native marshal: buffer {name!r} unusable")
        bufp[j] = _data_ptr(arr)
    return bufp


def _make_scalar_runner(lib, kernel: LoopKernel, symbol: str = "repro_scalar"):
    """Wrap the scalar entry in the CompiledKernel ``fn`` calling
    convention: ``fn(bufs, env, inner_trip, outer_trip) -> (env_out,
    (order, seen, taken), iterations)``."""
    fn = getattr(lib, symbol)
    fn.restype = ctypes.c_int64
    fn.argtypes = [_VOIDPP, _VOIDPP, ctypes.c_int64, ctypes.c_int64] + [
        _I64P
    ] * 6
    arr_decls = list(kernel.arrays.items())
    sc_decls = list(kernel.scalars.items())
    ng = sum(1 for s in kernel.stmts() if isinstance(s, IfBlock))
    name = kernel.name

    # Scratch hoisted out of the per-call path: the ctypes pointer
    # casts (``data_as``) dominate warm-call overhead, so allocate the
    # bookkeeping arrays and scalar cells once per attached kernel.
    # Sound because execution is never re-entrant and suite parallelism
    # is process-based, so a closure is only ever driven by one thread.
    m = max(1, ng)
    gseen = np.zeros(m, np.int64)
    gtaken = np.zeros(m, np.int64)
    gorder = np.zeros(m, np.int64)
    gcount = np.zeros(1, np.int64)
    fires = np.zeros(1, np.int64)
    oob = np.zeros(1, np.int64)
    book = (gseen, gtaken, gorder, gcount, fires, oob)
    book_ptrs = tuple(x.ctypes.data_as(_I64P) for x in book)
    cells = [
        (sname, np.empty(1, dtype=NP_DTYPE[decl.dtype]))
        for sname, decl in sc_decls
    ]
    scp = (ctypes.c_void_p * max(1, len(sc_decls)))()
    for j, (_sname, cell) in enumerate(cells):
        scp[j] = cell.ctypes.data
    # Buffer-pointer cache keyed on array *identity*: holding strong
    # references means a default ``resize()`` (refcheck=True) on a
    # cached buffer raises rather than silently moving its data.
    cached_arrs: tuple = ()
    cached_bufp = None

    def run(bufs, env, inner_trip, outer_trip):
        nonlocal cached_arrs, cached_bufp
        arrs = tuple(bufs.get(an) for an, _d in arr_decls)
        if (
            cached_bufp is not None
            and len(arrs) == len(cached_arrs)
            and all(a is b for a, b in zip(arrs, cached_arrs))
        ):
            bufp = cached_bufp
        else:
            bufp = _marshal_bufs(arr_decls, bufs)
            cached_arrs, cached_bufp = arrs, bufp
        for sname, cell in cells:
            try:
                cell[0] = env[sname]
            except (KeyError, TypeError, ValueError) as exc:
                raise CompileError(
                    f"native marshal: scalar {sname!r} ({exc})"
                ) from exc
        for x in book:
            x.fill(0)
        iters = fn(
            bufp,
            scp,
            int(inner_trip),
            int(outer_trip),
            *book_ptrs,
        )
        if fires[0]:
            ufuncs.add_sqrt_guard_fires(int(fires[0]))
        if oob[0]:
            raise NativeError(
                f"native kernel {name!r}: index out of bounds "
                "(buffers may be partially mutated)"
            )
        env_out = {sname: cell[0] for sname, cell in cells}
        order = [int(x) for x in gorder[: int(gcount[0])]]
        return env_out, (order, gseen[:ng].tolist(), gtaken[:ng].tolist()), int(iters)

    return run


def _make_vector_runner(
    lib, kernel: LoopKernel, lanes: frozenset, symbol: str = "repro_vector"
):
    """Wrap the vector entry: runs the vectorized lane blocks in place.

    One call executes the full lane blocks of a single inner-loop
    instance (``outer`` names which one; depth-1 kernels pass 0).
    Lane-expanded scalars (reductions/privates) are mutated in their
    numpy arrays; parameters are passed by value.  Raises
    :class:`CompileError` on marshal problems *before* any mutation, so
    the caller can silently fall back to the Python block loop.
    """
    fn = getattr(lib, symbol)
    fn.restype = ctypes.c_int64
    fn.argtypes = [
        _VOIDPP,
        _VOIDPP,
        ctypes.c_int64,
        ctypes.c_int64,
        ctypes.c_int64,
    ] + [_I64P] * 2
    arr_decls = list(kernel.arrays.items())
    sc_decls = list(kernel.scalars.items())
    name = kernel.name

    def run(bufs, lane_env, vf, vec_trip, outer=0):
        bufp = _marshal_bufs(arr_decls, bufs)
        keep = []
        lp = (ctypes.c_void_p * max(1, len(sc_decls)))()
        for j, (sname, decl) in enumerate(sc_decls):
            v = lane_env.get(sname)
            if sname in lanes:
                if (
                    not isinstance(v, np.ndarray)
                    or v.dtype != NP_DTYPE[decl.dtype]
                    or not v.flags["C_CONTIGUOUS"]
                    or v.size < vf
                ):
                    raise CompileError(
                        f"native marshal: lane scalar {sname!r} unusable"
                    )
                lp[j] = v.ctypes.data
            else:
                cell = np.empty(1, dtype=NP_DTYPE[decl.dtype])
                try:
                    cell[0] = v
                except (TypeError, ValueError) as exc:
                    raise CompileError(
                        f"native marshal: scalar {sname!r} ({exc})"
                    ) from exc
                keep.append(cell)
                lp[j] = cell.ctypes.data
        fires = np.zeros(1, np.int64)
        oob = np.zeros(1, np.int64)
        fn(
            bufp,
            lp,
            int(vf),
            int(vec_trip),
            int(outer),
            fires.ctypes.data_as(_I64P),
            oob.ctypes.data_as(_I64P),
        )
        if fires[0]:
            ufuncs.add_sqrt_guard_fires(int(fires[0]))
        if oob[0]:
            raise NativeError(
                f"native kernel {name!r}: index out of bounds "
                "(buffers may be partially mutated)"
            )

    return run


# ---------------------------------------------------------------------------
# Build-time verification
# ---------------------------------------------------------------------------


def _within_tolerance(ref, ref_bufs, got, got_bufs) -> bool:
    """Exact guards/iterations/ints; floats within a tight tolerance."""
    if (
        ref.guard_probs != got.guard_probs
        or ref.iterations != got.iterations
        or set(ref_bufs) != set(got_bufs)
        or set(ref.scalars) != set(got.scalars)
    ):
        return False

    def close(x, y) -> bool:
        x, y = np.asarray(x), np.asarray(y)
        if x.dtype != y.dtype or x.shape != y.shape:
            return False
        if not np.issubdtype(x.dtype, np.floating):
            return x.tobytes() == y.tobytes()
        return bool(
            np.allclose(
                x.astype(np.float64),
                y.astype(np.float64),
                rtol=1e-4,
                atol=1e-6,
                equal_nan=True,
            )
        )

    return all(close(ref_bufs[k], got_bufs[k]) for k in ref_bufs) and all(
        close(ref.scalars[n], got.scalars[n]) for n in ref.scalars
    )


def _verify_scalar(kernel: LoopKernel, fp: str, runner) -> tuple[str, str]:
    """Interpreter-vs-native check → ('exact'|'tolerance'|'mismatch', why)."""
    ck = CompiledKernel(fp, "native", runner)
    try:
        ref_bufs = make_buffers(kernel, seed=0)
        got_bufs = {k: v.copy() for k, v in ref_bufs.items()}
        ref = run_scalar_interpreted(kernel, ref_bufs, None, _NATIVE_CHECK_ITERS)
        got = _compile._execute(ck, kernel, got_bufs, None, _NATIVE_CHECK_ITERS)
    except Exception as exc:
        return "mismatch", f"native execution failed: {exc!r}"
    if _compile.bit_identical(ref, ref_bufs, got, got_bufs):
        return "exact", ""
    if _within_tolerance(ref, ref_bufs, got, got_bufs):
        return "tolerance", "float results within rtol=1e-4 (libm drift)"
    return "mismatch", "self-check mismatch vs interpreter"


def _verify_vector(kernel: LoopKernel, vrun) -> str:
    """Compare the native vector entry against ``_exec_stmts_vector``
    block-by-block on identical inputs → 'exact' | 'mismatch' |
    'unsupported: why'.  Only 'exact' is ever used.

    Depth-2 kernels run several outer-loop instances so outer-indexed
    subscripts are exercised (both sides skip the scalar tail, so the
    comparison stays apples-to-apples)."""
    from ..analysis.framework.passmanager import default_manager

    trip = kernel.inner.trip
    vf = min(4, trip)
    if vf < 1:
        return "unsupported: zero-trip loop"
    vec_trip = min(trip - trip % vf, 4 * vf)
    if vec_trip <= 0:
        return "unsupported: no full lane block"
    outer_trip = 1 if kernel.depth == 1 else kernel.loops[0].trip
    outer_vals = range(min(outer_trip, 3))
    try:
        infos = default_manager().get("scalars", kernel)
        env_in = initial_scalars(kernel)
        ref_bufs = make_buffers(kernel, seed=0)
        got_bufs = {k: v.copy() for k, v in ref_bufs.items()}
        ref_env, _ = make_lane_env(kernel, infos, env_in, vf)
        got_env, _ = make_lane_env(kernel, infos, env_in, vf)
        with np.errstate(all="ignore"):
            for o in outer_vals:
                for start in range(0, vec_trip, vf):
                    lanes_arr = np.arange(start, start + vf)
                    ivals = (
                        (lanes_arr,) if kernel.depth == 1 else (o, lanes_arr)
                    )
                    ctx = _Ctx(ref_bufs, ref_env, ivals)
                    _exec_stmts_vector(kernel, kernel.body, ctx, None, vf)
        for o in outer_vals:
            vrun(got_bufs, got_env, vf, vec_trip, outer=o)
    except Exception as exc:
        return f"unsupported: vector execution failed ({exc!r})"
    for bname in ref_bufs:
        if ref_bufs[bname].tobytes() != got_bufs[bname].tobytes():
            return "mismatch"
    for sname in kernel.scalars:
        rv, gv = np.asarray(ref_env[sname]), np.asarray(got_env[sname])
        if rv.dtype != gv.dtype or rv.tobytes() != gv.tobytes():
            return "mismatch"
    return "exact"


# ---------------------------------------------------------------------------
# Public API: the tier ladder hooks
# ---------------------------------------------------------------------------


def native_compiled(
    kernel: LoopKernel, fp: str, forced: bool = False
) -> Optional[CompiledKernel]:
    """The kernel's native CompiledKernel, or None (tier unavailable,
    static refusal, or self-check demotion).

    ``forced=True`` (``get_compiled(kernel, "native")``) turns every
    None into a :class:`CompileError` explaining why.
    """
    if not native_enabled():
        if forced:
            raise CompileError("native tier disabled (REPRO_NATIVE=0)")
        return None
    tc = find_toolchain()
    if tc is None:
        _note_degraded(kernel)
        if forced:
            raise CompileError(
                f"no usable C toolchain ({toolchain_failure() or 'unknown'})"
            )
        return None
    nfp = _native_fingerprint(fp, tc)
    mod = _attach(kernel, fp, tc, nfp)
    if isinstance(mod, _Failure):
        if forced:
            raise CompileError(f"native tier refused: {mod.reason}")
        return None
    verdict = mod.meta.get("scalar")
    if verdict == "exact" or (verdict == "tolerance" and tolerance_enabled()):
        elided = mod.meta.get("elided") or {}
        if elided.get("gathers"):
            _diag(
                kernel,
                f"-Rpass=bounds: native fast body elides "
                f"{elided['gathers']} gather/scatter bounds check(s); "
                "a runtime contract scan selects it over the guarded body",
            )
        return CompiledKernel(
            fp, "native", mod.scalar_run, source="", reason=f"native ({verdict})"
        )
    detail = mod.meta.get("scalar_detail") or verdict
    _compile._STATS.native_demoted += 1
    if verdict == "tolerance":
        _diag(
            kernel,
            "-Rpass-missed=native: demoted to the NumPy tier "
            f"({detail}; set REPRO_NATIVE_TOLERANCE=1 to accept)",
        )
    else:
        _diag(
            kernel,
            f"-Rpass-missed=native: demoted to the NumPy tier ({detail})",
            warning=True,
        )
    if forced:
        raise CompileError(f"native self-check demotion: {detail}")
    return None


def try_run_vector_blocks(plan, bufs, lane_env, vf, vec_trip, outer=0) -> bool:
    """Run ``run_vector``'s full-block loop natively, if possible.

    One call covers the full lane blocks of a single inner-loop
    instance — ``outer`` names which one (depth-1 callers pass 0; the
    executor calls once per outer iteration so the Python scalar tail
    can run between rows, as cross-row dependences require).

    Returns False — with *no* buffer mutation — on any refusal
    (tier disabled, no toolchain, no verified vector entry, lane
    classification mismatch with the baked artifact, marshal problems);
    the caller falls back to the Python block loop.  On True the blocks
    have executed: buffers and lane-expanded scalars are updated in
    place, bit-identically to the Python path.
    """
    kernel = plan.kernel
    if (
        not native_enabled()
        or kernel.depth > 2
        or vf > _VF_MAX
        or vec_trip <= 0
    ):
        return False
    tc = find_toolchain()
    if tc is None:
        _note_degraded(kernel)
        return False
    fp = _compile._cache_fp(kernel)
    mod = _attach(kernel, fp, tc, _native_fingerprint(fp, tc))
    if isinstance(mod, _Failure) or mod.vector_run is None:
        return False
    plan_lanes = {
        n
        for n, i in plan.scalar_info.items()
        if i.klass in (ScalarClass.REDUCTION, ScalarClass.PRIVATE)
    }
    if plan_lanes != set(mod.lanes):
        return False
    try:
        mod.vector_run(bufs, lane_env, vf, vec_trip, outer=outer)
    except CompileError:
        return False
    _compile._STATS.runs_native_vector += 1
    return True
