"""Seeded, property-based generator of valid ``LoopKernel`` IR.

The paper fits on 151 hand-written TSVC kernels; learning-curve
experiments need corpora an order of magnitude larger.  This module
samples synthetic kernels over the TSVC category taxonomy — straight
elementwise chains, guarded stores, reductions, loop-carried
dependences with known distance/direction, gathers with in-bounds
contracts, and nested 2-D loops — and guarantees every emitted kernel
is *valid by construction*:

* it passes :func:`repro.ir.verify_kernel` (the builder runs it),
* the range analysis never classifies it ``proven-unsafe`` (so the
  measurement prepass accepts it, and a functional run cannot fault),
* categories that promise vectorizable kernels pass ``check_legality``
  at the natural VF (``crossing-thresholds`` deliberately includes
  backward flow dependences the legality framework must *refuse* —
  those become recorded :class:`VectorizationFailure` rows, exactly
  like their hand-written counterparts).

Everything is deterministic: a kernel is fully named by
``gx{seed}_{index}_{category}`` and the generator is a pure function
of that name.  ``corpus_names(k)`` is prefix-stable — corpus 400 is a
prefix of corpus 800 — which is what makes learning curves over nested
corpus sizes meaningful and sharded sweeps resumable.

Sampling uses bounded redraw: each attempt derives a fresh
``random.Random`` from ``sha256(seed:index:category:attempt)``, builds
a candidate through :class:`KernelBuilder`, and keeps the first one the
validity gate accepts.  The samplers are constructed so the first
attempt almost always passes; the gate is the property-based safety
net, and the property tests (``tests/test_gen.py``) additionally
replay the execution-based range crosscheck over many seeds.

Generated kernels are memoized per process and per name.  That is not
just a speed-up: the guard-probability memo and the measurement
prepass key on object identity, so every lookup of a generated name
must return the *same* kernel object within a process.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import Callable, Optional, Sequence

from ..ir import (
    DType,
    KernelBuilder,
    LoopKernel,
    fabs,
    fmax,
    fmin,
)

__all__ = [
    "GEN_CATEGORIES",
    "GEN_LEN",
    "GEN_LEN2",
    "GenerationError",
    "clear_gen_memo",
    "corpus_names",
    "gen_name",
    "generate_kernel",
    "is_generated_name",
    "parse_gen_name",
]

#: Trip count / 1-D extent of generated kernels.  Much smaller than the
#: suite's 32000: the timing model is analytic in the trip count, while
#: functional runs (guard-probability estimation, native self-checks,
#: the sanitizer crosscheck) execute real iterations — small trips keep
#: a 1,500-kernel corpus sweep fast.
GEN_LEN = 1024

#: Per-dimension extent of generated 2-D kernels.
GEN_LEN2 = 64

#: Positive-subscript headroom: loops run ``GEN_LEN - _SHIFT`` so a read
#: at ``i + off`` (``off`` ≤ _SHIFT) stays statically in bounds, and the
#: range analysis proves it rather than classifying the kernel unsafe.
_SHIFT = 4

#: Category taxonomy.  Names mirror the TSVC suite's categories where a
#: counterpart exists so per-category reports merge naturally; each is
#: hyphenated (never underscored) because ``_`` delimits the name parts.
GEN_CATEGORIES = (
    "linear-dependence",
    "control-flow",
    "reductions",
    "crossing-thresholds",
    "indirect-addressing",
    "nested",
)

#: Categories whose kernels must pass legality at the natural VF.
#: ``crossing-thresholds`` is exempt: its backward-dependence half
#: exists to exercise (and populate datasets with) legality refusals.
_VECTORIZING = frozenset(c for c in GEN_CATEGORIES if c != "crossing-thresholds")

_NAME_RE = re.compile(r"gx(\d+)_(\d+)_([a-z][a-z0-9-]*)\Z")

#: Bounded-redraw budget per name before GenerationError.
_MAX_ATTEMPTS = 32


class GenerationError(Exception):
    """No valid kernel found within the redraw budget for a name."""


def gen_name(seed: int, index: int, category: str) -> str:
    """The canonical name of generated kernel ``index`` of a stream."""
    if category not in GEN_CATEGORIES:
        raise ValueError(f"unknown generator category {category!r}")
    return f"gx{seed}_{index:05d}_{category}"


def is_generated_name(name: str) -> bool:
    """True for names the generator owns (``gx<seed>_<index>_<cat>``)."""
    return _NAME_RE.match(name) is not None


def parse_gen_name(name: str) -> tuple[int, int, str]:
    """Split a generated name into ``(seed, index, category)``."""
    m = _NAME_RE.match(name)
    if m is None:
        raise ValueError(f"not a generated kernel name: {name!r}")
    return int(m.group(1)), int(m.group(2)), m.group(3)


def corpus_names(
    count: int,
    seed: int = 0,
    categories: Sequence[str] = GEN_CATEGORIES,
) -> list[str]:
    """The first ``count`` names of generation stream ``seed``.

    Categories round-robin, so ``corpus_names(k)`` is a prefix of
    ``corpus_names(k + m)`` — nested corpora for learning curves — and
    every prefix has a balanced category mix.
    """
    cats = list(categories)
    return [gen_name(seed, i, cats[i % len(cats)]) for i in range(count)]


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


def _const(rng: random.Random, lo: float = -1.0, hi: float = 1.0) -> float:
    """A rounded literal: short to print, exact in f32 and f64."""
    return round(rng.uniform(lo, hi), 3)


def _expr_tree(rng: random.Random, leaf: Callable[[], object], depth: int):
    """A random float expression tree over ``leaf()`` draws.

    Operators are value-bounded (+, -, *, min, max, abs over inputs in
    (-1, 1)), so deep trees cannot overflow or produce NaNs — part of
    the validity-by-construction contract.
    """
    if depth <= 0 or rng.random() < 0.3:
        return leaf()
    a = _expr_tree(rng, leaf, depth - 1)
    b = _expr_tree(rng, leaf, depth - 1)
    r = rng.random()
    if r < 0.30:
        return a + b
    if r < 0.55:
        return a - b
    if r < 0.75:
        return a * b
    if r < 0.85:
        return fmin(a, b)
    if r < 0.95:
        return fmax(a, b)
    return fabs(a) + b


def _leaf_factory(rng: random.Random, i, srcs, params):
    """Leaves for :func:`_expr_tree`: source reads (sometimes at a small
    positive offset), parameters, and literals."""

    def leaf():
        r = rng.random()
        if r < 0.70:
            src = rng.choice(srcs)
            off = rng.choice((0, 0, 0, 0, 1, 2, _SHIFT))
            return src[i + off] if off else src[i]
        if r < 0.85 and params:
            return rng.choice(params)
        return _const(rng)

    return leaf


def _sample_linear(name: str, rng: random.Random) -> LoopKernel:
    """Elementwise chains: 1–3 stores to distinct, never-read arrays."""
    k = KernelBuilder(name, category="linear-dependence", default_len=GEN_LEN)
    i = k.loop(GEN_LEN - _SHIFT)
    srcs = list(k.arrays(*"bcd"[: rng.randint(2, 3)]))
    p = k.param("p", value=_const(rng, 0.5, 2.5))
    leaf = _leaf_factory(rng, i, srcs, [p])
    for dst in k.arrays(*("a", "e", "f")[: rng.randint(1, 3)]):
        dst[i] = _expr_tree(rng, leaf, rng.randint(1, 3))
    return k.build()


def _sample_control_flow(name: str, rng: random.Random) -> LoopKernel:
    """Guarded stores: threshold tests over a source array, with an
    optional else branch and an optional unguarded trailing store."""
    k = KernelBuilder(name, category="control-flow", default_len=GEN_LEN)
    i = k.loop(GEN_LEN - _SHIFT)
    b, c = k.arrays("b", "c")
    a = k.array("a")
    p = k.param("p", value=_const(rng, 0.5, 2.0))
    leaf = _leaf_factory(rng, i, [b, c], [p])
    thresh = _const(rng, -0.5, 0.5)
    cond = c[i] < thresh if rng.random() < 0.5 else c[i] > thresh
    with k.if_(cond):
        a[i] = _expr_tree(rng, leaf, rng.randint(1, 2))
    if rng.random() < 0.5:
        with k.else_():
            a[i] = _expr_tree(rng, leaf, 1)
    if rng.random() < 0.4:
        e = k.array("e")
        e[i] = _expr_tree(rng, leaf, rng.randint(1, 2))
    return k.build()


def _sample_reductions(name: str, rng: random.Random) -> LoopKernel:
    """Sum / min / max accumulations in the suite's reduction shapes."""
    k = KernelBuilder(name, category="reductions", default_len=GEN_LEN)
    i = k.loop(GEN_LEN - _SHIFT)
    b, c = k.arrays("b", "c")
    kind = rng.random()
    s = k.scalar("s", init=0.0)
    if kind < 0.5:
        terms = (b[i] * c[i], b[i] + c[i], fabs(b[i]), b[i] * _const(rng))
        s.set(s + rng.choice(terms))
    elif kind < 0.75:
        s.set(fmin(s, b[i] + c[i] * _const(rng)))
    else:
        s.set(fmax(s, fabs(b[i])))
    if rng.random() < 0.4:
        t = k.scalar("t", init=0.0)
        t.set(t + b[i] * _const(rng))
    if rng.random() < 0.3:
        a = k.array("a")
        a[i] = b[i] + c[i]
    return k.build()


def _sample_crossing(name: str, rng: random.Random) -> LoopKernel:
    """Loop-carried dependences with a known distance and direction.

    Forward reads (``a[i + d]``, an anti dependence — ~70%) are legal
    to vectorize; backward reads (``a[i - d]``, a flow dependence of
    distance ``d``) are legality refusals the corpus records as
    vectorization failures, mirroring the suite's crossing kernels.
    """
    k = KernelBuilder(name, category="crossing-thresholds", default_len=GEN_LEN)
    i = k.loop(GEN_LEN - _SHIFT)
    a, b = k.arrays("a", "b")
    p = k.param("p", value=_const(rng, 0.3, 0.9))
    d = rng.randint(1, _SHIFT)
    carried = a[i + d] if rng.random() < 0.7 else a[i - d]
    a[i] = carried * p + b[i]
    if rng.random() < 0.3:
        c, e = k.arrays("c", "e")
        e[i] = b[i] + c[i] * _const(rng)
    return k.build()


def _sample_indirect(name: str, rng: random.Random) -> LoopKernel:
    """Gathers through an integer index array, in bounds by contract.

    Every array (index and data alike) has extent ``GEN_LEN``, so the
    harness contract — ``make_buffers`` fills integer arrays with a
    permutation modulo the *minimum* extent — keeps each ``b[x[i]]``
    statically in ``[0, GEN_LEN)``.
    """
    k = KernelBuilder(name, category="indirect-addressing", default_len=GEN_LEN)
    i = k.loop(GEN_LEN - _SHIFT)
    x = k.array("x", DType.I32)
    a, b, c = k.arrays("a", "b", "c")
    p = k.param("p", value=_const(rng, 0.5, 2.0))
    gathered = b[x[i]]
    r = rng.random()
    if r < 0.4:
        a[i] = gathered * p + c[i]
    elif r < 0.7:
        a[i] = gathered + c[i] * _const(rng)
    else:
        with k.if_(c[i] > _const(rng, -0.3, 0.3)):
            a[i] = gathered * p
    return k.build()


def _sample_nested(name: str, rng: random.Random) -> LoopKernel:
    """Depth-2 loops over 2-D arrays: elementwise updates plus an
    occasional outer-invariant (row-broadcast) operand."""
    k = KernelBuilder(
        name,
        category="nested",
        default_len=GEN_LEN,
        default_len2=GEN_LEN2,
    )
    i = k.loop(GEN_LEN2)
    j = k.loop(GEN_LEN2)
    aa, bb = k.array2("aa"), k.array2("bb")
    p = k.param("p", value=_const(rng, 0.5, 1.5))
    r = rng.random()
    if r < 0.4:
        aa[i, j] = aa[i, j] * p + bb[i, j]
    elif r < 0.7:
        cc = k.array2("cc")
        aa[i, j] = bb[i, j] * p + cc[i, j]
    else:
        row = k.array("row", extents=(GEN_LEN2,))
        aa[i, j] = bb[i, j] + row[i] * p
    return k.build()


_SAMPLERS: dict[str, Callable[[str, random.Random], LoopKernel]] = {
    "linear-dependence": _sample_linear,
    "control-flow": _sample_control_flow,
    "reductions": _sample_reductions,
    "crossing-thresholds": _sample_crossing,
    "indirect-addressing": _sample_indirect,
    "nested": _sample_nested,
}


# ---------------------------------------------------------------------------
# Validity gate + memoized entry point
# ---------------------------------------------------------------------------


def _acceptable(kernel: LoopKernel, category: str) -> bool:
    """The validity-by-construction gate (beyond verify_kernel)."""
    from ..analysis.framework.passmanager import default_manager
    from ..analysis.framework.ranges import prove_safe
    from ..targets import ARMV8_NEON
    from ..vectorize import check_legality, natural_vf

    am = default_manager()
    if prove_safe(kernel, am).classification == "proven-unsafe":
        return False
    if category in _VECTORIZING:
        vf = natural_vf(kernel, ARMV8_NEON)
        if not check_legality(kernel, vf, manager=am).ok:
            return False
    return True


_MEMO: dict[str, LoopKernel] = {}


def generate_kernel(name: str) -> LoopKernel:
    """The kernel a generated name denotes (memoized per process)."""
    kern = _MEMO.get(name)
    if kern is None:
        _MEMO[name] = kern = _generate(name)
    return kern


def clear_gen_memo() -> None:
    """Drop the per-process name→kernel memo (tests)."""
    _MEMO.clear()


def _generate(name: str) -> LoopKernel:
    seed, index, category = parse_gen_name(name)
    sampler = _SAMPLERS.get(category)
    if sampler is None:
        raise GenerationError(f"unknown generator category {category!r}")
    last: Optional[Exception] = None
    for attempt in range(_MAX_ATTEMPTS):
        key = f"{seed}:{index}:{category}:{attempt}".encode()
        rng = random.Random(
            int.from_bytes(hashlib.sha256(key).digest()[:8], "big")
        )
        try:
            kern = sampler(name, rng)
        except Exception as exc:  # builder/verifier rejection → redraw
            last = exc
            continue
        if _acceptable(kern, category):
            return kern
    raise GenerationError(
        f"no valid kernel for {name!r} within {_MAX_ATTEMPTS} attempts"
        + (f" (last rejection: {last})" if last else "")
    )
