"""Property-based kernel generation (see DESIGN.md §15).

``repro.gen`` owns the synthetic side of the corpus: deterministic
name→kernel generation over the TSVC category taxonomy
(:mod:`.generator`) and counterexample minimization for its property
tests (:mod:`.shrink`).  The TSVC registry delegates unknown names of
the form ``gx{seed}_{index}_{category}`` here, so generated kernels
flow through every existing pipeline layer — supervised pools rebuild
them by name, checkpoint journals replay them, the chaos harness
faults them — without those layers knowing the corpus exists.
"""

from .generator import (
    GEN_CATEGORIES,
    GEN_LEN,
    GEN_LEN2,
    GenerationError,
    clear_gen_memo,
    corpus_names,
    gen_name,
    generate_kernel,
    is_generated_name,
    parse_gen_name,
)
from .shrink import kernel_size, shrink_kernel

__all__ = [
    "GEN_CATEGORIES",
    "GEN_LEN",
    "GEN_LEN2",
    "GenerationError",
    "clear_gen_memo",
    "corpus_names",
    "gen_name",
    "generate_kernel",
    "is_generated_name",
    "parse_gen_name",
    "kernel_size",
    "shrink_kernel",
]
