"""Greedy kernel shrinking for property-test counterexamples.

When a property test over generated kernels fails, the raw
counterexample is an arbitrary sampled kernel — several statements,
deep expression trees, spare declarations.  ``shrink_kernel`` reduces
it while a caller-supplied predicate (\"still fails\") holds, by
repeatedly applying the first size-reducing transformation that keeps
the kernel both structurally valid and failing:

* drop a top-level statement (when more than one remains),
* unwrap an ``IfBlock`` (splice its then-branch, drop its else-branch),
* replace an expression node by one of its same-typed children
  (``BinOp``→operand, ``UnOp``/``Convert``→operand, ``Select``→arm),
* prune declarations the body no longer references.

Candidates that fail ``verify_kernel`` are skipped, so the minimal
kernel is itself valid IR and can be printed with
:func:`repro.ir.kernel_to_source` as a self-contained reproducer.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from ..ir import (
    ArrayStore,
    BinOp,
    Convert,
    Expr,
    IfBlock,
    Indirect,
    LoopKernel,
    ScalarAssign,
    Select,
    Stmt,
    UnOp,
    verify_kernel,
    walk_stmts,
)

__all__ = ["shrink_kernel", "kernel_size"]


def kernel_size(kernel: LoopKernel) -> int:
    """Node-count measure the shrinker minimizes."""
    total = 0
    for stmt in walk_stmts(kernel.body):
        total += 1
        for root in stmt.exprs():
            total += _expr_size(root)
    return total + len(kernel.arrays) + len(kernel.scalars)


def _expr_size(e: Expr) -> int:
    return 1 + sum(_expr_size(c) for c in e.children())


def _shrink_expr(e: Expr) -> Iterator[Expr]:
    """Same-typed strictly smaller replacements for ``e``, then the
    results of shrinking one child in place."""
    if isinstance(e, BinOp):
        for side in (e.lhs, e.rhs):
            if side.dtype == e.dtype:
                yield side
        for lhs in _shrink_expr(e.lhs):
            yield BinOp(e.op, lhs, e.rhs)
        for rhs in _shrink_expr(e.rhs):
            yield BinOp(e.op, e.lhs, rhs)
    elif isinstance(e, UnOp):
        if e.operand.dtype == e.dtype:
            yield e.operand
        for operand in _shrink_expr(e.operand):
            yield UnOp(e.op, operand)
    elif isinstance(e, Select):
        for arm in (e.if_true, e.if_false):
            if arm.dtype == e.dtype:
                yield arm
    elif isinstance(e, Convert):
        if e.operand.dtype == e.dtype:
            yield e.operand


def _with_value(stmt: Stmt, value: Expr) -> Stmt:
    if isinstance(stmt, (ArrayStore, ScalarAssign)):
        return dataclasses.replace(stmt, value=value)
    raise TypeError(f"statement {stmt!r} has no value to replace")


def _shrink_stmt(stmt: Stmt) -> Iterator[tuple[Stmt, ...]]:
    """Replacements for one statement, each a (possibly empty or
    spliced) tuple of statements."""
    if isinstance(stmt, IfBlock):
        yield stmt.then_body  # unwrap the guard
        if stmt.else_body:
            yield stmt.else_body
            yield (IfBlock(stmt.cond, stmt.then_body),)  # drop else
        for idx in range(len(stmt.then_body)):
            for repl in _shrink_stmt(stmt.then_body[idx]):
                body = stmt.then_body[:idx] + repl + stmt.then_body[idx + 1 :]
                if body:
                    yield (IfBlock(stmt.cond, body, stmt.else_body),)
    elif isinstance(stmt, (ArrayStore, ScalarAssign)):
        for value in _shrink_expr(stmt.value):
            yield (_with_value(stmt, value),)


def _used_names(body: tuple[Stmt, ...]) -> set[str]:
    names: set[str] = set()

    def visit(e: Expr) -> None:
        from ..ir import Load, ScalarRef

        if isinstance(e, Load):
            names.add(e.array)
            for ix in e.subscript:
                if isinstance(ix, Indirect):
                    names.add(ix.array)
        elif isinstance(e, ScalarRef):
            names.add(e.name)
        for child in e.children():
            visit(child)

    for stmt in walk_stmts(body):
        if isinstance(stmt, ArrayStore):
            names.add(stmt.array)
            for ix in stmt.subscript:
                if isinstance(ix, Indirect):
                    names.add(ix.array)
        elif isinstance(stmt, ScalarAssign):
            names.add(stmt.name)
        for root in stmt.exprs():
            visit(root)
    return names


def _prune_decls(kernel: LoopKernel) -> LoopKernel:
    used = _used_names(kernel.body)
    arrays = {n: d for n, d in kernel.arrays.items() if n in used}
    scalars = {n: d for n, d in kernel.scalars.items() if n in used}
    if len(arrays) == len(kernel.arrays) and len(scalars) == len(kernel.scalars):
        return kernel
    return dataclasses.replace(kernel, arrays=arrays, scalars=scalars)


def _candidates(kernel: LoopKernel) -> Iterator[LoopKernel]:
    body = kernel.body
    if len(body) > 1:
        for idx in range(len(body)):
            yield dataclasses.replace(
                kernel, body=body[:idx] + body[idx + 1 :]
            )
    for idx in range(len(body)):
        for repl in _shrink_stmt(body[idx]):
            new_body = body[:idx] + repl + body[idx + 1 :]
            if new_body:
                yield dataclasses.replace(kernel, body=new_body)


def shrink_kernel(
    kernel: LoopKernel,
    predicate: Callable[[LoopKernel], bool],
    max_rounds: int = 500,
) -> LoopKernel:
    """Greedily minimize ``kernel`` while ``predicate`` stays true.

    ``predicate(kernel)`` must be true on entry (the caller's failing
    property); the result is a locally minimal valid kernel on which it
    is still true.  Predicates should treat \"raises\" however the
    caller means it — the shrinker itself only catches verification
    failures of candidate kernels.
    """
    current = kernel
    for _ in range(max_rounds):
        for cand in _candidates(current):
            cand = _prune_decls(cand)
            try:
                verify_kernel(cand)
            except Exception:
                continue
            if kernel_size(cand) >= kernel_size(current):
                continue
            try:
                still_failing = predicate(cand)
            except Exception:
                still_failing = False
            if still_failing:
                current = cand
                break
        else:
            break  # no candidate both valid and still-failing: minimal
    # An untouched kernel is returned as-is (spare decls and all) so a
    # never-failing predicate is a no-op; anything shrunk gets its dead
    # declarations pruned.
    return current if current is kernel else _prune_decls(current)
