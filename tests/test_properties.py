"""Property-based tests over randomly generated kernels.

The strongest check in the suite: for *arbitrary* generated loops, the
legality verdict must be sound — whenever the vectorizer accepts a
kernel, vectorized execution must match scalar execution.  Kernels are
drawn from a grammar of array statements with random affine subscripts
(offsets spanning carried dependences in both directions), optional
guards, reductions, and private temporaries.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import KernelBuilder
from repro.sim.executor import make_buffers, run_scalar, run_vector
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.vectorize import vectorize_loop
from repro.vectorize.plan import VectorizationFailure

from tests.helpers import assert_buffers_close, copy_buffers

TRIP = 96
ARRAYS = ["a", "b", "c"]


@st.composite
def random_kernel(draw):
    """A random 1-D loop kernel over three arrays and one scalar."""
    k = KernelBuilder("hypo")
    handles = {name: k.array(name, extents=(TRIP,)) for name in ARRAYS}
    use_reduction = draw(st.booleans())
    s = k.scalar("s") if use_reduction else None
    i = k.loop(TRIP)

    def rand_index(allow_stride=True):
        off = draw(st.integers(min_value=-3, max_value=3))
        # Clamp the subscript into bounds: i in [0, TRIP); index wraps
        # for negatives, so only positive overflow must be avoided.
        return i + off if off <= 0 else i + (off - 4)

    def rand_expr(depth=0):
        choice = draw(st.integers(0, 3 if depth < 2 else 1))
        if choice == 0:
            arr = draw(st.sampled_from(ARRAYS))
            return handles[arr][rand_index()]
        if choice == 1:
            return draw(
                st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
            )
        op = draw(st.sampled_from(["+", "-", "*"]))
        lhs, rhs = rand_expr(depth + 1), rand_expr(depth + 1)
        if isinstance(lhs, float) and isinstance(rhs, float):
            lhs = handles["b"][i]
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        return lhs * rhs

    n_stmts = draw(st.integers(1, 3))
    for _ in range(n_stmts):
        target_arr = draw(st.sampled_from(ARRAYS))
        guarded = draw(st.booleans())
        value = rand_expr()
        if isinstance(value, float):
            value = handles["b"][i] + value
        if guarded:
            cond_arr = draw(st.sampled_from(ARRAYS))
            with k.if_(handles[cond_arr][i] > 0.0):
                handles[target_arr][rand_index()] = value
        else:
            handles[target_arr][rand_index()] = value
    if s is not None:
        s.set(s + handles["a"][i])
    return k.build()


@given(random_kernel())
@settings(max_examples=120, deadline=None)
def test_legality_is_sound_on_neon(kern):
    """If the vectorizer accepts a random kernel, results must match."""
    plan = vectorize_loop(kern, ARMV8_NEON)
    if isinstance(plan, VectorizationFailure):
        return  # rejection is always sound
    bufs_s = make_buffers(kern, seed=17)
    bufs_v = copy_buffers(bufs_s)
    rs = run_scalar(kern, bufs_s)
    rv = run_vector(plan, bufs_v)
    assert_buffers_close(bufs_s, bufs_v, rtol=1e-3, atol=1e-4, context=str(kern))
    for name in kern.live_out_scalars():
        # nan_ok: a random kernel can drive a live-out scalar to NaN on
        # both paths, which is agreement, not a mismatch.
        assert float(rs.scalars[name]) == pytest.approx(
            float(rv.scalars[name]), rel=1e-2, abs=1e-3, nan_ok=True
        )


@given(random_kernel())
@settings(max_examples=60, deadline=None)
def test_legality_is_sound_on_avx2(kern):
    plan = vectorize_loop(kern, X86_AVX2)
    if isinstance(plan, VectorizationFailure):
        return
    bufs_s = make_buffers(kern, seed=29)
    bufs_v = copy_buffers(bufs_s)
    run_scalar(kern, bufs_s)
    run_vector(plan, bufs_v)
    assert_buffers_close(bufs_s, bufs_v, rtol=1e-3, atol=1e-4, context=str(kern))


@given(random_kernel())
@settings(max_examples=60, deadline=None)
def test_lowering_total_cycles_positive(kern):
    """Any kernel lowers to streams with positive, finite cycle counts."""
    from repro.codegen import lower_scalar
    from repro.sim.timing import analyze_stream

    stream = lower_scalar(kern, ARMV8_NEON)
    br = analyze_stream(stream, ARMV8_NEON)
    assert np.isfinite(br.total)
    assert br.total > 0
    assert br.per_iter >= stream.bytes_per_iter() / 64.0  # sanity floor


@given(random_kernel())
@settings(max_examples=60, deadline=None)
def test_unroll_preserves_semantics(kern):
    from repro.vectorize import unroll

    u = unroll(kern, 2)
    bufs1 = make_buffers(kern, seed=41)
    bufs2 = copy_buffers(bufs1)
    r1 = run_scalar(kern, bufs1)
    r2 = run_scalar(u, bufs2)
    assert_buffers_close(bufs1, bufs2, rtol=1e-4, atol=1e-5, context="unroll2")
    for name in kern.live_out_scalars():
        assert float(r1.scalars[name]) == pytest.approx(
            float(r2.scalars[name]), rel=1e-3, abs=1e-4, nan_ok=True
        )


@given(st.integers(min_value=-8, max_value=8), st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_safe_distance_rule(offset, vf):
    """Brute-force check of the dependence safety rule on one family.

    For ``a[i] = a[i + offset] + b[i]`` the analysis verdict at a given
    VF must agree with actual execution equality.
    """
    if offset == 0:
        return
    k = KernelBuilder("dist")
    a = k.array("a", extents=(64,))
    b = k.array("b", extents=(64,))
    i = k.loop(64)
    a[i] = a[i + offset if offset < 0 else i + offset - 9] + b[i]
    kern = k.build()
    plan = vectorize_loop(kern, ARMV8_NEON, vf=vf if vf >= 2 else 2)
    bufs_s = make_buffers(kern, seed=offset + 100)
    bufs_v = copy_buffers(bufs_s)
    run_scalar(kern, bufs_s)
    if isinstance(plan, VectorizationFailure):
        return
    run_vector(plan, bufs_v)
    assert_buffers_close(bufs_s, bufs_v, rtol=1e-4, atol=1e-5)
