"""Pass manager, diagnostics, and dataflow passes (analysis.framework)."""

import pytest

from repro.analysis.framework import (
    ENTRY_DEF,
    AnalysisManager,
    AnalysisPass,
    DefUsePass,
    DependencePass,
    Diagnostics,
    LivenessPass,
    LoopInvariantPass,
    RacePass,
    ReachingDefsPass,
    Remark,
    Severity,
)

from tests.helpers import build


def simple_kernel():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(64)
        a[i] = b[i] + 1.0

    return build("simple", body)


class TestAnalysisManager:
    def test_result_is_cached(self):
        am = AnalysisManager()
        kern = simple_kernel()
        first = am.get(DependencePass, kern)
        second = am.get(DependencePass, kern)
        assert first is second
        assert am.stats.hits == 1
        assert am.stats.misses == 1

    def test_cached_does_not_run(self):
        am = AnalysisManager()
        kern = simple_kernel()
        assert am.cached(DependencePass, kern) is None
        am.get(DependencePass, kern)
        assert am.cached(DependencePass, kern) is not None

    def test_lookup_by_name_and_instance(self):
        am = AnalysisManager()
        kern = simple_kernel()
        by_cls = am.get(DependencePass, kern)
        assert am.get("deps", kern) is by_cls
        with pytest.raises(KeyError, match="unknown analysis pass"):
            am.get("no-such-pass", kern)

    def test_run_pipeline_returns_ordered_results(self):
        am = AnalysisManager()
        kern = simple_kernel()
        results = am.run_pipeline(kern, [DependencePass, RacePass])
        assert list(results) == ["deps", "race-detector"]
        assert results["race-detector"].dep_info is results["deps"]

    def test_invalidation_cascades_to_dependents(self):
        am = AnalysisManager()
        kern = simple_kernel()
        am.get(RacePass, kern)  # pulls DependencePass underneath
        assert am.cached(DependencePass, kern) is not None
        dropped = am.invalidate(kern, DependencePass)
        assert dropped == 2  # deps + race-detector
        assert am.cached(DependencePass, kern) is None
        assert am.cached(RacePass, kern) is None

    def test_invalidate_whole_kernel(self):
        am = AnalysisManager()
        kern = simple_kernel()
        am.get(RacePass, kern)
        assert am.invalidate(kern) >= 2
        assert am.cached(RacePass, kern) is None

    def test_invalidation_rerun_gives_fresh_result(self):
        am = AnalysisManager()
        kern = simple_kernel()
        first = am.get(DependencePass, kern)
        am.invalidate(kern, DependencePass)
        second = am.get(DependencePass, kern)
        assert first is not second

    def test_transitive_cascade_through_custom_passes(self):
        calls = []

        class Base(AnalysisPass):
            name = "t-base"

            def run(self, kernel, am):
                calls.append("base")
                return 1

        class Mid(AnalysisPass):
            name = "t-mid"

            def run(self, kernel, am):
                calls.append("mid")
                return am.get(base, kernel) + 1

        class Top(AnalysisPass):
            name = "t-top"

            def run(self, kernel, am):
                calls.append("top")
                return am.get(mid, kernel) + 1

        base, mid, top = Base(), Mid(), Top()
        am = AnalysisManager()
        kern = simple_kernel()
        assert am.get(top, kern) == 3
        assert calls == ["top", "mid", "base"]
        # Invalidating the bottom drops the whole chain, nothing else.
        am.get(DependencePass, kern)
        assert am.invalidate(kern, base) == 3
        assert am.cached(DependencePass, kern) is not None

    def test_lru_bound_evicts_oldest(self):
        am = AnalysisManager(max_kernels=2)
        k1, k2, k3 = simple_kernel(), simple_kernel(), simple_kernel()
        for k in (k1, k2, k3):
            am.get(DependencePass, k)
        assert am.cached(DependencePass, k1) is None
        assert am.cached(DependencePass, k3) is not None


class TestDiagnostics:
    def r(self, msg, severity=Severity.REMARK, **kw):
        return Remark(
            severity=severity, pass_name="p", kernel="k", message=msg, **kw
        )

    def test_format_mirrors_clang(self):
        remark = self.r("hello", stmt_index=2)
        assert remark.format() == "k:S2: remark: hello [-Rpass=p]"
        warn = self.r("bad", severity=Severity.WARNING)
        assert warn.format() == "k: warning: bad [-Rpass-missed=p]"

    def test_dedup(self):
        d = Diagnostics()
        d.emit(self.r("x"))
        d.emit(self.r("x"))
        d.emit(self.r("y"))
        assert len(d) == 2

    def test_filters_and_max_severity(self):
        d = Diagnostics()
        d.remark("p", "k1", "a")
        d.warning("p", "k1", "b")
        d.error("q", "k2", "c")
        assert len(d.remarks(kernel="k1")) == 2
        assert len(d.remarks(min_severity=Severity.WARNING)) == 2
        assert len(d.remarks(pass_name="q")) == 1
        assert d.max_severity() is Severity.ERROR
        assert d.max_severity("k1") is Severity.WARNING
        assert d.has_errors and d.has_warnings

    def test_structured_args_round_trip(self):
        d = Diagnostics()
        d.remark("p", "k", "m", args=(("array", "a"), ("distance", 3)))
        remark = d.remarks()[0]
        assert remark.arg("array") == "a"
        assert remark.arg("distance") == "3"
        assert remark.arg("missing") is None
        assert d.to_json()[0]["args"] == {"array": "a", "distance": "3"}


class TestDataflowPasses:
    def test_reaching_defs_entry_and_kill(self):
        def body(k):
            a, b = k.arrays("a", "b")
            t = k.scalar("t")
            i = k.loop(64)
            t.set(b[i])        # S0
            a[i] = t + 1.0     # S1

        kern = build("t", body)
        am = AnalysisManager()
        rd = am.get(ReachingDefsPass, kern)
        # S0 sees the entry value (plus the back-edge copy of S0).
        assert ENTRY_DEF in rd.reach_in[0]["t"]
        # S1 sees exactly S0's definition: the entry def is killed.
        assert rd.reach_in[1]["t"] == frozenset({0})
        assert rd.exit["t"] == frozenset({0})

    def test_def_use_chains_and_dead_defs(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            t = k.scalar("t")
            i = k.loop(64)
            t.set(b[i])        # S0: overwritten at S1, never read -> dead
            t.set(c[i])        # S1
            a[i] = t + 1.0     # S2

        kern = build("t", body)
        du = AnalysisManager().get(DefUsePass, kern)
        assert du.defs["t"] == (0, 1)
        assert du.uses["t"] == (2,)
        assert du.chains[("t", 1)] == frozenset({2})
        assert du.dead_defs == (("t", 0),)

    def test_liveness_loop_carried_reduction(self):
        def body(k):
            a = k.array("a")
            s = k.scalar("s")
            i = k.loop(64)
            s.set(s + a[i])

        kern = build("t", body)
        lv = AnalysisManager().get(LivenessPass, kern)
        assert "s" in lv.loop_carried
        assert "s" in lv.live_in[0]

    def test_loop_invariant_statements_and_loads(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[3] = 2.0           # S0: invariant store
            b[i] = c[5] + 1.0    # S1: varying store, invariant load

        kern = build("t", body)
        inv = AnalysisManager().get(LoopInvariantPass, kern)
        assert 0 in inv.invariant_stmts
        assert 1 not in inv.invariant_stmts
        assert 1 in inv.invariant_loads

    def test_guarded_defs_merge(self):
        def body(k):
            a, b = k.arrays("a", "b")
            t = k.scalar("t")
            i = k.loop(64)
            t.set(0.0)                 # S0
            with k.if_(b[i] > 0.0):    # S1
                t.set(b[i])            # S2
            a[i] = t + 1.0             # S3

        kern = build("t", body)
        rd = AnalysisManager().get(ReachingDefsPass, kern)
        # Both the unconditional and the guarded def reach the use.
        assert rd.reach_in[3]["t"] == frozenset({0, 2})
        du = AnalysisManager().get(DefUsePass, kern)
        assert du.dead_defs == ()
