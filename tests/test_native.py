"""Native compiled tier tests (repro.sim.native + repro.sim.toolchain).

The native tier renders kernel IR to C, builds a shared object with the
host toolchain, and routes the measurement hot path through ctypes.
Its contract mirrors the kernel compiler's: *bit-identity* with the
interpreter and with the NumPy tier (``REPRO_NATIVE=0``) — buffers,
scalars, guard statistics, sqrt-guard fire counts — plus well-behaved
infrastructure: fingerprint-keyed on-disk artifacts, concurrent builds
that compile once, corruption-safe loads, LRU bounds, and graceful
degradation (one remark, zero failures) on hosts without a compiler.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.framework.passmanager import default_manager
from repro.experiments import DatasetSpec
from repro.ir import fsqrt
from repro.pipeline import MeasurementCache, RetryPolicy, measure_suite
from repro.pipeline.build import DatasetBuildStats
from repro.sim import (
    bit_identical,
    clear_compile_cache,
    clear_guard_prob_memo,
    estimate_guard_probs,
    kernel_fingerprint,
    make_buffers,
    run_scalar_compiled,
    run_scalar_interpreted,
    run_vector,
)
from repro.sim import native, ufuncs
from repro.sim.compile import _execute, compile_summary
from repro.targets import ARMV8_NEON
from repro.tsvc import all_kernels
from repro.vectorize import vectorize_loop
from repro.vectorize.plan import VectorizationPlan

from tests.helpers import SMALL, build, copy_buffers

SUITE = list(all_kernels(dims=SMALL))

HAVE_CC = native.find_toolchain() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no usable C toolchain")


@pytest.fixture(autouse=True)
def _clean_tier_state():
    """Each test starts and ends with fresh per-process tier state."""
    clear_compile_cache()
    native.reset_native_state()
    yield
    clear_compile_cache()
    native.reset_native_state()


def tiny_kernel(name="nk", scale=2.0):
    def body(k):
        a = k.array("a", extents=(64,))
        b = k.array("b", extents=(64,))
        i = k.loop(64)
        a[i] = b[i] * scale

    return build(name, body)


def so_files(root):
    return sorted(f for f in os.listdir(root) if f.endswith(".so"))


# -- suite-wide parity with the NumPy tier (the acceptance property) ---------


@needs_cc
@pytest.mark.parametrize("seed", [0, 1])
def test_suite_parity_native_vs_numpy_tier(seed, monkeypatch):
    """Default (native) and ``REPRO_NATIVE=0`` runs of every TSVC
    kernel are bit-indistinguishable: buffer bytes, scalar bits, guard
    order/counts, iteration counts."""
    start = compile_summary()["kernels_native"]
    reference = {}
    for kernel in SUITE:
        bufs = make_buffers(kernel, seed=seed)
        reference[kernel.name] = (run_scalar_compiled(kernel, bufs), bufs)
    mid = compile_summary()["kernels_native"]
    assert mid > start

    monkeypatch.setenv("REPRO_NATIVE", "0")
    clear_compile_cache()
    native.reset_native_state()
    mismatched = []
    for kernel in SUITE:
        bufs = make_buffers(kernel, seed=seed)
        got = run_scalar_compiled(kernel, bufs)
        ref, ref_bufs = reference[kernel.name]
        if not bit_identical(ref, ref_bufs, got, bufs):
            mismatched.append(kernel.name)
    assert mismatched == []
    assert compile_summary()["kernels_native"] == mid  # none promoted


@needs_cc
def test_guard_probs_parity_with_numpy_tier(monkeypatch):
    """Guard-probability estimation — the measurement feature that
    actually consumes functional runs — is identical across tiers."""
    from repro.ir.stmt import IfBlock

    guarded = [
        k for k in SUITE if any(isinstance(s, IfBlock) for s in k.stmts())
    ][:8]
    assert guarded, "suite lost its guarded kernels?"
    clear_guard_prob_memo()
    native_probs = {k.name: estimate_guard_probs(k) for k in guarded}

    monkeypatch.setenv("REPRO_NATIVE", "0")
    clear_compile_cache()
    native.reset_native_state()
    clear_guard_prob_memo()
    for k in guarded:
        assert estimate_guard_probs(k) == native_probs[k.name], k.name


@needs_cc
def test_run_vector_native_blocks_parity(monkeypatch):
    """``run_vector`` full blocks through the native entry match the
    Python block loop bit-for-bit, on real vectorization plans."""
    plans = []
    for kernel in SUITE:
        plan = vectorize_loop(kernel, ARMV8_NEON)
        if isinstance(plan, VectorizationPlan):
            plans.append(plan)
        if len(plans) == 8:
            break
    ran_native = 0
    for plan in plans:
        kernel = plan.kernel
        b_native = make_buffers(kernel, seed=3)
        b_python = copy_buffers(b_native)
        before = compile_summary()["runs_native_vector"]
        r_native = run_vector(plan, b_native)
        if compile_summary()["runs_native_vector"] > before:
            ran_native += 1
        monkeypatch.setenv("REPRO_NATIVE", "0")
        native.reset_native_state()
        r_python = run_vector(plan, b_python)
        monkeypatch.delenv("REPRO_NATIVE")
        native.reset_native_state()
        assert r_native.iterations == r_python.iterations
        for name in r_native.scalars:
            a = np.asarray(r_native.scalars[name])
            b = np.asarray(r_python.scalars[name])
            assert a.dtype == b.dtype and a.tobytes() == b.tobytes(), (
                f"{kernel.name}: lane scalar {name} diverged"
            )
        for name in b_native:
            assert np.array_equal(b_native[name], b_python[name]), (
                f"{kernel.name}: buffer {name} diverged"
            )
    assert ran_native > 0, "no plan exercised the native vector entry"


@needs_cc
def test_run_vector_native_depth2_parity(monkeypatch):
    """Depth-2 plans route their full lane blocks through the native
    vector entry — one call per outer row, with the Python scalar tail
    between rows — and stay bit-identical to the Python block loop.

    The kernel carries a cross-row flow dependence with a ragged inner
    trip, so any ordering mistake (native blocks of row N+1 before the
    tail of row N) or outer-index mistranslation changes the bytes.
    """

    def body(k):
        aa = k.array("aa", extents=(16, 16))
        bb = k.array("bb", extents=(16, 16))
        i = k.loop(15)
        j = k.loop(13)
        aa[i + 1, j] = aa[i, j] * 0.5 + bb[i, j]

    kernel = build("n2d", body)
    plan = vectorize_loop(kernel, ARMV8_NEON)
    assert isinstance(plan, VectorizationPlan), f"failed: {plan}"
    b_native = make_buffers(kernel, seed=3)
    b_python = copy_buffers(b_native)
    before = compile_summary()["runs_native_vector"]
    r_native = run_vector(plan, b_native)
    ran = compile_summary()["runs_native_vector"] - before
    assert ran == 15, f"expected one native call per outer row, got {ran}"

    monkeypatch.setenv("REPRO_NATIVE", "0")
    native.reset_native_state()
    r_python = run_vector(plan, b_python)
    assert r_native.iterations == r_python.iterations
    for name in b_native:
        assert b_native[name].tobytes() == b_python[name].tobytes(), (
            f"buffer {name} diverged"
        )
    for name in r_native.scalars:
        a = np.asarray(r_native.scalars[name])
        b = np.asarray(r_python.scalars[name])
        assert a.dtype == b.dtype and a.tobytes() == b.tobytes(), (
            f"scalar {name} diverged"
        )


@needs_cc
def test_sqrt_guard_fires_counted_natively():
    """The C tier's ``sqrt(fabs(x))`` guard reports fire counts into
    the same process counter the interpreter uses, one per evaluation."""

    def body(k):
        a = k.array("a", extents=(64,))
        b = k.array("b", extents=(64,))
        i = k.loop(64)
        a[i] = fsqrt(b[i])

    kernel = build("nsqrt", body)
    ck = native.native_compiled(kernel, kernel_fingerprint(kernel))
    assert ck is not None and ck.mode == "native"

    ref_bufs = make_buffers(kernel, seed=0)
    assert (ref_bufs["b"] < 0).any()  # make_buffers spans [-1, 1]
    before = ufuncs.sqrt_guard_fires()
    run_scalar_interpreted(kernel, ref_bufs)
    ref_fired = ufuncs.sqrt_guard_fires() - before
    assert ref_fired > 0

    bufs = make_buffers(kernel, seed=0)
    before = ufuncs.sqrt_guard_fires()
    _execute(ck, kernel, bufs, None, None)
    assert ufuncs.sqrt_guard_fires() - before == ref_fired
    np.testing.assert_array_equal(bufs["a"], ref_bufs["a"])


# -- artifact cache hygiene --------------------------------------------------


@needs_cc
def test_fingerprint_invalidation_rebuilds_so(tmp_path, monkeypatch):
    """A semantically different kernel gets its own ``.so``; the same
    kernel re-attaches without adding artifacts."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
    base = tiny_kernel(scale=2.0)
    assert native.native_compiled(base, kernel_fingerprint(base)) is not None
    assert len(so_files(tmp_path)) == 1

    mutated = tiny_kernel(scale=3.0)
    assert kernel_fingerprint(mutated) != kernel_fingerprint(base)
    assert (
        native.native_compiled(mutated, kernel_fingerprint(mutated)) is not None
    )
    assert len(so_files(tmp_path)) == 2

    native.clear_attached()
    built_s = compile_summary()["native_build_s"]
    assert native.native_compiled(base, kernel_fingerprint(base)) is not None
    assert len(so_files(tmp_path)) == 2  # attach, not rebuild
    assert compile_summary()["native_build_s"] == built_s


@needs_cc
def test_corrupt_artifacts_evicted_not_fatal(tmp_path, monkeypatch):
    """Truncated/foreign cache files are evicted and rebuilt; loads
    never raise out of the tier."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
    kernel = tiny_kernel()
    fp = kernel_fingerprint(kernel)
    assert native.native_compiled(kernel, fp) is not None
    (so_name,) = so_files(tmp_path)

    # Foreign bytes in the .so: sha256 check evicts, build recreates.
    # (Unlink first: truncating the mapped inode in place would SIGBUS
    # the already-loaded copy, as it would any shared library.)
    (tmp_path / so_name).unlink()
    with open(tmp_path / so_name, "wb") as fh:
        fh.write(b"not an ELF object")
    native.clear_attached()
    ck = native.native_compiled(kernel, fp)
    assert ck is not None
    bufs = make_buffers(kernel, seed=0)
    ref_bufs = copy_buffers(bufs)
    got = _execute(ck, kernel, bufs, None, None)
    ref = run_scalar_interpreted(kernel, ref_bufs)
    assert bit_identical(ref, ref_bufs, got, bufs)

    # Torn meta sidecar: half-install is treated as absent.
    meta_name = so_name[: -len(".so")] + ".json"
    with open(tmp_path / meta_name, "w") as fh:
        fh.write('{"schema":')
    native.clear_attached()
    assert native.native_compiled(kernel, fp) is not None


@needs_cc
def test_lru_prune_bounds_artifact_count(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX", "3")
    for scale in (2.0, 3.0, 4.0, 5.0, 6.0, 7.0):
        kernel = tiny_kernel(scale=scale)
        assert (
            native.native_compiled(kernel, kernel_fingerprint(kernel))
            is not None
        )
    assert len(so_files(tmp_path)) <= 3


@needs_cc
def test_clear_native_artifacts_purges(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
    kernel = tiny_kernel()
    assert native.native_compiled(kernel, kernel_fingerprint(kernel)) is not None
    assert so_files(tmp_path)
    removed = native.clear_native_artifacts()
    assert removed == 1
    assert not any(
        f.endswith((".so", ".json", ".c")) for f in os.listdir(tmp_path)
    )


# -- concurrency: build once, attach many ------------------------------------


_LOCK_WORKER = """\
import sys
sys.path.insert(0, {src!r})
from repro.ir import KernelBuilder
from repro.sim import kernel_fingerprint
from repro.sim import native

k = KernelBuilder("lockk")
a = k.array("a", extents=(64,))
b = k.array("b", extents=(64,))
i = k.loop(64)
a[i] = b[i] * 2.0
kernel = k.build()
ck = native.native_compiled(kernel, kernel_fingerprint(kernel))
print("mode", None if ck is None else ck.mode)
"""


@needs_cc
def test_concurrent_builds_compile_once(tmp_path):
    """Two processes racing on the same kernel produce one compile:
    the flock loser re-checks the installed meta and attaches."""
    cache = tmp_path / "cache"
    cache.mkdir()
    log = tmp_path / "cc.log"
    real_cc = native.find_toolchain().path
    wrapper = tmp_path / "cc-logged"
    wrapper.write_text(
        "#!/bin/sh\n"
        f'case "$*" in *{cache}*) echo "COMPILE $*" >> {log}; sleep 0.6;; esac\n'
        f'exec {real_cc} "$@"\n'
    )
    wrapper.chmod(0o755)

    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env = dict(
        os.environ,
        REPRO_CC=str(wrapper),
        REPRO_NATIVE_CACHE_DIR=str(cache),
    )
    script = _LOCK_WORKER.format(src=src)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for _ in range(2)
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "mode native" in out, (out, err)
    compiles = [
        line for line in log.read_text().splitlines() if line.startswith("COMPILE")
    ]
    assert len(compiles) == 1, compiles


# -- degradation without a toolchain -----------------------------------------


def test_missing_toolchain_degrades_with_one_remark(monkeypatch):
    """No compiler: the sweep path still works via the NumPy tier, and
    exactly one ``-Rpass-missed=native`` remark is emitted per process."""
    monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler")
    native.reset_native_state()
    diags = default_manager().diagnostics
    before = len(diags.remarks(pass_name="native"))
    for kernel in SUITE[:6]:
        bufs = make_buffers(kernel, seed=0)
        ref_bufs = copy_buffers(bufs)
        got = run_scalar_compiled(kernel, bufs)
        ref = run_scalar_interpreted(kernel, ref_bufs)
        assert bit_identical(ref, ref_bufs, got, bufs), kernel.name
    new = diags.remarks(pass_name="native")[before:]
    assert len(new) == 1
    assert "-Rpass-missed=native" in new[0].message
    assert not native.native_available()
    assert compile_summary()["toolchain"] is None


def test_repro_native_0_disables_without_remark(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    native.reset_native_state()
    diags = default_manager().diagnostics
    before = len(diags.remarks(pass_name="native"))
    kernel = tiny_kernel()
    assert native.native_compiled(kernel, kernel_fingerprint(kernel)) is None
    assert len(diags.remarks(pass_name="native")) == before
    assert not native.native_enabled()


# -- pipeline integration ----------------------------------------------------

SPEC = DatasetSpec("armv8-neon", "llv")
FAST = RetryPolicy(max_attempts=5, base_delay=0.0)


def no_cache(tmp_path):
    return MeasurementCache(root=tmp_path / "off", enabled=False)


@needs_cc
def test_sweep_stats_record_tiers(tmp_path):
    stats = DatasetBuildStats()
    samples, _failures = measure_suite(
        SPEC, workers=1, cache=no_cache(tmp_path), stats=stats
    )
    assert samples
    assert stats.strategy == "serial"
    assert stats.tiers.get("native", 0) > 0
    assert stats.compile_build_s >= 0.0


@needs_cc
def test_chaos_sweep_native_parity(tmp_path, monkeypatch):
    """Under fault injection (supervised pool, retries), the surviving
    samples are identical whether or not the native tier is on."""
    with_native = measure_suite(
        SPEC,
        workers=2,
        cache=no_cache(tmp_path),
        faults="flaky_exc:0.3",
        retry=FAST,
    )[0]
    monkeypatch.setenv("REPRO_NATIVE", "0")
    clear_compile_cache()
    native.reset_native_state()
    without = measure_suite(
        SPEC,
        workers=2,
        cache=no_cache(tmp_path),
        faults="flaky_exc:0.3",
        retry=FAST,
    )[0]
    assert [s.name for s in with_native] == [s.name for s in without]
    for a, b in zip(with_native, without):
        assert a.measured_speedup == b.measured_speedup
        assert a.measured_scalar_cpi == b.measured_scalar_cpi
        assert a.measured_vector_cpi == b.measured_vector_cpi
        assert np.array_equal(a.scalar_features, b.scalar_features)
        assert np.array_equal(a.vector_features, b.vector_features)
