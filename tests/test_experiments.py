"""Experiment driver tests: every paper figure regenerates with the
expected qualitative shape.

These run the full-size datasets (the timing model is analytical, so a
suite sweep is fast); dataset construction is cached across tests.
"""

import numpy as np
import pytest

from repro.experiments import (
    ARM_LLV,
    EXPERIMENTS,
    EXPLICIT_ONLY,
    X86_SLP,
    build_dataset,
    run_experiment,
)
from repro.experiments.reporting import ascii_table, fail_summary, text_scatter


@pytest.fixture(scope="module")
def arm_ds():
    return build_dataset(ARM_LLV)


@pytest.fixture(scope="module")
def x86_ds():
    return build_dataset(X86_SLP)


class TestDatasets:
    def test_arm_dataset_shape(self, arm_ds):
        assert len(arm_ds.samples) + len(arm_ds.failures) == 151
        assert 75 <= len(arm_ds.samples) <= 110

    def test_x86_dataset_shape(self, x86_ds):
        assert len(x86_ds.samples) + len(x86_ds.failures) == 151
        assert 40 <= len(x86_ds.samples) <= 110

    def test_speedups_positive_and_plausible(self, arm_ds):
        sp = arm_ds.measured
        assert (sp > 0).all()
        assert sp.max() <= 10.0
        assert 0.5 <= np.median(sp) <= 4.0

    def test_dataset_cached(self):
        d1 = build_dataset(ARM_LLV)
        d2 = build_dataset(ARM_LLV)
        assert d1 is d2

    def test_sample_lookup(self, arm_ds):
        s = arm_ds.sample("s000")
        assert s.name == "s000"
        with pytest.raises(KeyError):
            arm_ds.sample("nope")

    def test_summary_text(self, arm_ds):
        text = arm_ds.summary()
        assert "vectorized" in text and "median" in text


class TestExperimentRegistry:
    def test_registered_experiments(self):
        assert list(EXPERIMENTS) == [f"E{i}" for i in range(1, 15)]

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize(
        "eid", [e for e in EXPERIMENTS if e not in EXPLICIT_ONLY]
    )
    def test_every_experiment_runs(self, eid):
        res = run_experiment(eid)
        assert res.id == eid
        assert res.rows or res.tables
        text = res.to_text()
        assert res.title in text


class TestPaperShape:
    """The qualitative claims of the paper must hold in the results."""

    def test_e1_baseline_has_mispredictions(self):
        row = run_experiment("E1").rows[0]
        assert row["FP"] + row["FN"] >= 3
        assert row["pearson"] < 0.8

    def test_e4_rated_beats_counts(self):
        res = run_experiment("E4")
        count_r = [r["pearson"] for r in res.rows if r["features"] == "counts"]
        rated_r = [r["pearson"] for r in res.rows if r["features"] == "rated"]
        assert max(rated_r) > max(count_r)
        assert min(rated_r) > 0.6

    def test_e4_rated_beats_baseline(self):
        base = run_experiment("E1").rows[0]["pearson"]
        res = run_experiment("E4")
        rated_r = [r["pearson"] for r in res.rows if r["features"] == "rated"]
        assert max(rated_r) > base

    def test_e5_loocv_close_to_fit(self):
        res = run_experiment("E5")
        rows = {(r["setting"], r["model"].lower()): r for r in res.rows}
        fit = rows[("fit-all", "rated-nnls")]["pearson"]
        loocv = rows[("LOOCV", "rated-nnls")]["pearson"]
        assert loocv <= fit + 0.05
        assert loocv > fit - 0.25  # generalizes

    def test_e6_policy_improves_runtime(self):
        res = run_experiment("E6")
        policies = {r["policy"]: r["suite cycles/elem"] for r in res.tables[0][1]}
        assert policies["oracle"] <= policies["rated-NNLS policy"]
        assert policies["rated-NNLS policy"] <= policies["llvm-static policy"] + 1e-9
        assert policies["oracle"] <= policies["always-vectorize"]
        assert policies["oracle"] <= policies["never-vectorize"]

    def test_e7_two_transformations_differ(self):
        res = run_experiment("E7")
        measured = [r["measured"] for r in res.rows if "measured" in r]
        assert len(measured) == 2
        assert measured[0] != measured[1]

    def test_e10_cost_targets_unstable(self):
        res = run_experiment("E10")
        cost_rows = [r for r in res.rows if r["model"].startswith("cost-")]
        # The hallmark of the wide-interval problem: at least one cost
        # fit with degenerate RMSE or weak correlation.
        assert any(r["rmse"] > 2.0 or r["pearson"] < 0.3 for r in cost_rows)

    def test_e11_speedup_beats_cost_on_x86(self):
        cost = run_experiment("E10")
        speedup = run_experiment("E11")
        best_cost = max(
            r["pearson"] for r in cost.rows if r["model"].startswith("cost-")
        )
        best_speedup = max(r["pearson"] for r in speedup.rows)
        assert best_speedup > best_cost + 0.1

    def test_e11_rated_nnls_eliminates_false_negatives(self):
        res = run_experiment("E11")
        row = next(r for r in res.rows if r["model"] == "rated-NNLS")
        assert row["FN"] <= 1

    def test_e9_x86_baseline_weak_correlation(self):
        row = run_experiment("E9").rows[0]
        assert row["pearson"] < 0.5


class TestReporting:
    def test_ascii_table_alignment(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}]
        text = ascii_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(ln) for ln in lines[1:]}) <= 2  # consistent width

    def test_ascii_table_empty(self):
        assert "(no rows)" in ascii_table([])

    def test_text_scatter_contains_points(self):
        p = np.array([1.0, 2.0, 3.0])
        m = np.array([1.1, 2.2, 2.9])
        text = text_scatter(p, m)
        assert "o" in text
        assert "measured" in text

    def test_text_scatter_empty(self):
        assert text_scatter(np.array([]), np.array([])) == "(no points)"

    def test_fail_summary_counts(self):
        fails = [("a", "x"), ("b", "x"), ("c", "y")]
        assert fail_summary(fails) == "x: 2; y: 1"
        assert fail_summary([]) == "none"
