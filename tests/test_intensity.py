"""Arithmetic-intensity analysis and extended-model tests."""

import pytest

from repro.analysis import (
    IntensityReport,
    analyze_intensity,
    machine_balance,
    memory_bound_ratio,
)
from repro.codegen import lower_scalar, lower_vector
from repro.costmodel import (
    ExtendedSpeedupModel,
    RatedSpeedupModel,
    extended_features,
    predict_all,
)
from repro.costmodel.extended import EXTENDED_SUFFIX, intensity_of
from repro.costmodel.featurize import N_FEATURES
from repro.fitting import LeastSquares
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.validation import pearson
from repro.vectorize import vectorize_loop

from tests.helpers import build
from tests.test_costmodel import feat, mk_sample


def stream_of(body_fn, target=ARMV8_NEON):
    kern = build("t", body_fn)
    return lower_scalar(kern, target)


class TestIntensityReport:
    def test_streaming_kernel_low_intensity(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(100)
            a[i] = b[i] + 1.0

        rep = analyze_intensity(stream_of(body))
        # 1 add vs 8 bytes of traffic.
        assert rep.ops_per_iter == pytest.approx(1.0)
        assert rep.bytes_per_iter == pytest.approx(8.0)
        assert rep.intensity == pytest.approx(1 / 8)

    def test_compute_heavy_kernel_high_intensity(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(100)
            x = b[i]
            a[i] = (
                x * x * x + x * x + x + x * x * x * x + x * x + x * x * x
            )

        rep = analyze_intensity(stream_of(body))
        assert rep.intensity > 0.5

    def test_fma_counts_double(self):
        def body(k):
            a, b, c, d = k.arrays("a", "b", "c", "d")
            i = k.loop(100)
            a[i] = b[i] + c[i] * d[i]  # one FMA

        rep = analyze_intensity(stream_of(body))
        assert rep.ops_per_iter == pytest.approx(2.0)

    def test_vector_stream_per_elem_matches_scalar(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(256)
            a[i] = b[i] * 2.0

        kern = build("t", body)
        s = lower_scalar(kern, ARMV8_NEON)
        v = lower_vector(vectorize_loop(kern, ARMV8_NEON), ARMV8_NEON)
        rs, rv = analyze_intensity(s), analyze_intensity(v)
        assert rs.ops_per_elem == pytest.approx(rv.ops_per_elem)
        assert rs.bytes_per_elem == pytest.approx(rv.bytes_per_elem)

    def test_zero_traffic_handled(self):
        rep = IntensityReport(ops_per_iter=3.0, bytes_per_iter=0.0, elems_per_iter=1)
        assert rep.intensity == float("inf")
        rep0 = IntensityReport(ops_per_iter=0.0, bytes_per_iter=0.0, elems_per_iter=1)
        assert rep0.intensity == 0.0


class TestMachineBalance:
    def test_balance_grows_with_working_set(self):
        small = machine_balance(ARMV8_NEON, 1024)
        big = machine_balance(ARMV8_NEON, 1 << 30)
        assert big > small  # less bandwidth -> need more ops/byte

    def test_streaming_kernel_is_memory_bound(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(100)
            a[i] = b[i] + 1.0

        kern = build("t", body)
        v = lower_vector(vectorize_loop(kern, ARMV8_NEON), ARMV8_NEON)
        assert memory_bound_ratio(v, ARMV8_NEON) > 1.0

    def test_avx2_balance_higher_than_neon(self):
        # Wider vectors, same-ish bandwidth: x86 needs more ops/byte.
        assert machine_balance(X86_AVX2, 1 << 30) > machine_balance(
            ARMV8_NEON, 1 << 30
        )


class TestExtendedFeatures:
    def test_shape(self):
        v = extended_features(mk_sample())
        assert len(v) == 2 * N_FEATURES + len(EXTENDED_SUFFIX)

    def test_vf_feature_present(self):
        s8 = mk_sample(vf=8)
        s4 = mk_sample(vf=4)
        v8, v4 = extended_features(s8), extended_features(s4)
        assert v8[2 * N_FEATURES] == 8.0
        assert v4[2 * N_FEATURES] == 4.0

    def test_shares_sum_to_one(self):
        v = extended_features(mk_sample(vector=feat(load=2, add=1, shuffle=1)))
        mem, ovh, comp = v[-3], v[-2], v[-1]
        assert mem + ovh + comp == pytest.approx(1.0)

    def test_intensity_of_scale_free(self):
        a = feat(load=1, add=2)
        assert intensity_of(a) == pytest.approx(intensity_of(3 * a))

    def test_extended_beats_rated_on_arm(self):
        from repro.experiments import ARM_LLV, build_dataset

        ds = build_dataset(ARM_LLV)
        rated = RatedSpeedupModel(LeastSquares()).fit(ds.samples)
        ext = ExtendedSpeedupModel(LeastSquares()).fit(ds.samples)
        r_rated = pearson(predict_all(rated, ds.samples), ds.measured)
        r_ext = pearson(predict_all(ext, ds.samples), ds.measured)
        assert r_ext > r_rated

    def test_extended_model_name(self):
        assert ExtendedSpeedupModel(LeastSquares()).name == "extended-L2"
