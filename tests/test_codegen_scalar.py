"""Scalar code generation tests: instruction mixes, CSE, FMA, guards."""

import pytest

from repro.codegen import lower_scalar
from repro.ir import DType
from repro.targets import ARMV8_NEON
from repro.targets.classes import IClass

from tests.helpers import build


def counts_of(body_fn, guard_probs=None, fuse_fma=True):
    kern = build("t", body_fn)
    stream = lower_scalar(kern, ARMV8_NEON, guard_probs=guard_probs, fuse_fma=fuse_fma)
    return stream, stream.counts()


def test_simple_mix():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = b[i] + 1.0

    stream, counts = counts_of(body)
    assert counts == {IClass.LOAD: 1, IClass.ADD: 1, IClass.STORE: 1}
    assert stream.iters == 100
    assert stream.elems_per_iter == 1


def test_fma_contraction():
    def body(k):
        a, b, c, d = k.arrays("a", "b", "c", "d")
        i = k.loop(100)
        a[i] = b[i] + c[i] * d[i]

    _, counts = counts_of(body)
    assert counts.get(IClass.FMA) == 1
    assert IClass.MUL not in counts
    assert IClass.ADD not in counts


def test_fma_disabled():
    def body(k):
        a, b, c, d = k.arrays("a", "b", "c", "d")
        i = k.loop(100)
        a[i] = b[i] + c[i] * d[i]

    _, counts = counts_of(body, fuse_fma=False)
    assert IClass.FMA not in counts
    assert counts[IClass.MUL] == 1 and counts[IClass.ADD] == 1


def test_fms_contraction():
    def body(k):
        a, b, c, d = k.arrays("a", "b", "c", "d")
        i = k.loop(100)
        a[i] = b[i] * c[i] - d[i]

    _, counts = counts_of(body)
    assert counts.get(IClass.FMA) == 1


def test_cse_repeated_load():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = b[i] * b[i] + b[i]

    _, counts = counts_of(body)
    assert counts[IClass.LOAD] == 1  # b[i] loaded once


def test_store_invalidates_cse():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = b[i] + 1.0
        b[i] = a[i] * 2.0  # a[i] must be reloaded? no: forwarded
        a[i] = a[i] + b[i]  # a[i] invalidated by the store above? no...

    stream, counts = counts_of(body)
    # The precise count depends on forwarding; what must hold is that
    # stores appear 3x and loads at least 1 (b[i]).
    assert counts[IClass.STORE] == 3
    assert counts[IClass.LOAD] >= 1


def test_guard_weights_applied():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        i = k.loop(100)
        with k.if_(b[i] > 0.0):
            a[i] = c[i] * 2.0

    stream, counts = counts_of(body, guard_probs={0: 0.25})
    # guarded store weight = 0.25
    assert counts[IClass.STORE] == pytest.approx(0.25)
    assert counts[IClass.CMP] == 1  # the comparison always runs


def test_guard_default_prob():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        with k.if_(b[i] > 0.0):
            a[i] = 1.0

    _, counts = counts_of(body)
    assert counts[IClass.STORE] == pytest.approx(0.5)


def test_else_weight_complements():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        i = k.loop(100)
        with k.if_(b[i] > 0.0):
            a[i] = 1.0
        with k.else_():
            c[i] = 1.0

    _, counts = counts_of(body, guard_probs={0: 0.7})
    assert counts[IClass.STORE] == pytest.approx(0.7 + 0.3)


def test_reduction_has_carried_self_edge():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(100)
        s.set(s + a[i])

    stream, _ = counts_of(body)
    adds = [ins for ins in stream.body if ins.iclass is IClass.ADD]
    assert len(adds) == 1
    assert adds[0].carried == ((adds[0].id, 1),)


def test_memory_recurrence_carried_edge():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = a[i - 1] + b[i]

    stream, _ = counts_of(body)
    loads = [ins for ins in stream.body if ins.iclass is IClass.LOAD]
    carried = [ins for ins in loads if ins.carried]
    assert len(carried) == 1
    assert carried[0].carried[0][1] == 1  # distance 1


def test_licm_hoists_inner_invariant_load():
    def body(k):
        a = k.array("a")
        bb = k.array2("bb")
        c = k.array("c", extents=(256,))
        i = k.loop(256)
        j = k.loop(256)
        # c[i] is invariant in the inner j loop and c is read-only.
        bb[i, j] = bb[i, j] + c[i]

    stream, counts = counts_of(body)
    loads = [ins for ins in stream.body if ins.iclass is IClass.LOAD]
    hoisted = [ins for ins in loads if ins.weight < 1.0]
    assert len(hoisted) == 1
    assert hoisted[0].weight == pytest.approx(1 / 256)


def test_indirect_load_emits_index_load():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(100)
        a[i] = b[ip[i]]

    stream, counts = counts_of(body)
    assert counts[IClass.LOAD] == 2  # index load + data load
    data_load = [i_ for i_ in stream.body if "b[ip" in i_.note]
    assert data_load and data_load[0].srcs  # depends on the index load


def test_int_dtype_flows_through():
    def body(k):
        ix = k.array("ix", dtype=DType.I32)
        iy = k.array("iy", dtype=DType.I32)
        i = k.loop(100)
        ix[i] = (iy[i] & 3) + 1

    stream, counts = counts_of(body)
    logic = [ins for ins in stream.body if ins.iclass is IClass.LOGIC]
    assert logic and logic[0].dtype is DType.I32


def test_traffic_annotations():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[2 * i] = b[i] + 1.0

    stream, _ = counts_of(body)
    store = next(ins for ins in stream.body if ins.iclass is IClass.STORE)
    assert store.mem_stride == 2
    load = next(ins for ins in stream.body if ins.iclass is IClass.LOAD)
    assert load.mem_stride == 1
    assert stream.bytes_per_iter() == pytest.approx(4 + 8)  # b: 4B, a: stride-2 window
