"""LoopKernel container and printer tests."""

import pytest

from repro.ir import DType, kernel_to_source
from repro.ir.kernel import ArrayDecl, Loop, ScalarDecl

from tests.helpers import build


def two_level(k):
    aa, bb = k.array2("aa"), k.array2("bb")
    c = k.array("c", extents=(256,))
    s = k.scalar("s", init=1.5)
    i = k.loop(256)
    j = k.loop(128)
    aa[i, j] = bb[i, j] + c[i]
    s.set(s + aa[i, j])


class TestDecls:
    def test_array_decl_nbytes(self):
        assert ArrayDecl("a", DType.F32, (100,)).nbytes == 400
        assert ArrayDecl("aa", DType.F64, (10, 10)).nbytes == 800

    def test_array_decl_ndim(self):
        assert ArrayDecl("a", DType.F32, (4, 5, 6)).ndim == 3

    def test_loop_validation(self):
        with pytest.raises(ValueError):
            Loop(0)

    def test_scalar_decl_defaults(self):
        d = ScalarDecl("s")
        assert d.dtype is DType.F32 and d.init == 0.0


class TestKernelQueries:
    def test_depth_and_trips(self):
        kern = build("t", two_level)
        assert kern.depth == 2
        assert kern.inner.trip == 128
        assert kern.inner_level == 1
        assert kern.total_iterations == 256 * 128

    def test_arrays_read_written(self):
        kern = build("t", two_level)
        assert kern.arrays_written() == {"aa"}
        assert kern.arrays_read() == {"aa", "bb", "c"}

    def test_indirect_index_arrays_counted_as_read(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(16)
            a[ip[i]] = b[i]

        kern = build("t", body)
        assert "ip" in kern.arrays_read()

    def test_working_set(self):
        kern = build("t", two_level)
        expected = 256 * 256 * 4 * 2 + 256 * 4  # aa + bb + c
        assert kern.working_set_bytes() == expected

    def test_assigned_and_live_out_scalars(self):
        kern = build("t", two_level)
        assert kern.assigned_scalars() == {"s"}
        assert kern.live_out_scalars() == {"s"}

    def test_str_uses_printer(self):
        kern = build("t", two_level)
        assert str(kern) == kernel_to_source(kern)


class TestPrinter:
    def test_structure(self):
        kern = build("t", two_level)
        text = kernel_to_source(kern)
        assert "for (int i = 0; i < 256; i++)" in text
        assert "for (int j = 0; j < 128; j++)" in text
        assert "f32 aa[256][256];" in text
        assert "f32 s = 1.5;" in text
        assert text.count("}") == 2

    def test_if_else_rendering(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(16)
            with k.if_(b[i] > 0.0):
                a[i] = 1.0
            with k.else_():
                a[i] = 2.0

        text = kernel_to_source(build("t", body))
        assert "if (" in text and "} else {" in text

    def test_nested_if_indentation(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(16)
            with k.if_(b[i] > 0.0):
                with k.if_(c[i] > 0.0):
                    a[i] = 1.0

        text = kernel_to_source(build("t", body))
        lines = [ln for ln in text.splitlines() if "a[i]" in ln]
        assert lines[0].startswith("      ")  # three levels deep

    def test_indirect_rendering(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(16)
            a[i] = b[ip[i + 1]]

        text = kernel_to_source(build("t", body))
        assert "b[ip[i+1]]" in text
