"""The system's central invariant: vectorized execution ≡ scalar execution.

For every TSVC kernel that the vectorizers accept, running the
vectorized plan on random data must produce the same arrays and
live-out scalars as the scalar interpreter (up to float reassociation).
This exercises legality, if-conversion, reductions, masked stores,
gathers/scatters, remainder handling — end to end, on a shrunken suite
so the functional runs stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.executor import make_buffers, run_scalar, run_vector
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.tsvc import kernel_names, get_entry
from repro.vectorize import slp_vectorize, vectorize_loop
from repro.vectorize.plan import VectorizationFailure

from tests.helpers import SMALL, assert_buffers_close, copy_buffers

ALL_NAMES = kernel_names()


def _check_equivalence(kern, plan, seed: int):
    bufs_scalar = make_buffers(kern, seed=seed)
    bufs_vector = copy_buffers(bufs_scalar)
    r_scalar = run_scalar(kern, bufs_scalar)
    r_vector = run_vector(plan, bufs_vector)
    assert_buffers_close(
        bufs_scalar, bufs_vector, context=f"{kern.name}@vf{plan.vf}"
    )
    for name in kern.live_out_scalars():
        s, v = float(r_scalar.scalars[name]), float(r_vector.scalars[name])
        assert s == pytest.approx(v, rel=2e-3, abs=1e-4), (
            f"{kern.name}: scalar {name} diverged ({s} vs {v})"
        )


@pytest.mark.parametrize("name", ALL_NAMES)
def test_llv_equivalence_arm(name):
    kern = get_entry(name).build(SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON)
    if isinstance(plan, VectorizationFailure):
        pytest.skip(f"not vectorizable: {plan.reason}")
    _check_equivalence(kern, plan, seed=11)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_llv_equivalence_x86(name):
    kern = get_entry(name).build(SMALL)
    plan = vectorize_loop(kern, X86_AVX2)
    if isinstance(plan, VectorizationFailure):
        pytest.skip(f"not vectorizable: {plan.reason}")
    _check_equivalence(kern, plan, seed=23)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_slp_equivalence_x86(name):
    kern = get_entry(name).build(SMALL)
    plan = slp_vectorize(kern, X86_AVX2)
    if isinstance(plan, VectorizationFailure):
        pytest.skip(f"not packable: {plan.reason}")
    _check_equivalence(kern, plan, seed=37)


@pytest.mark.parametrize("vf", [2, 4, 8])
def test_equivalence_across_vfs(vf):
    """A representative kernel must agree at every supported VF."""
    kern = get_entry("s152").build(SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON, vf=vf)
    assert not isinstance(plan, VectorizationFailure)
    _check_equivalence(kern, plan, seed=5)


def test_reduction_equivalence_is_reassociation_only():
    """Lane-parallel sums differ from sequential sums only by rounding."""
    kern = get_entry("vsumr").build(SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON)
    bufs = make_buffers(kern, seed=3)
    exact = float(np.sum(bufs["a"].astype(np.float64)))
    r = run_vector(plan, copy_buffers(bufs))
    assert float(r.scalars["sum"]) == pytest.approx(exact, rel=1e-3)


def test_guarded_reduction_matches_numpy():
    kern = get_entry("s3111").build(SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON)
    bufs = make_buffers(kern, seed=3)
    expected = float(bufs["a"][bufs["a"] > 0].astype(np.float64).sum())
    r = run_vector(plan, copy_buffers(bufs))
    assert float(r.scalars["sum"]) == pytest.approx(expected, rel=1e-3)


def test_max_reduction_matches_numpy():
    kern = get_entry("s314").build(SMALL)
    plan = vectorize_loop(kern, ARMV8_NEON)
    bufs = make_buffers(kern, seed=3)
    expected = float(bufs["a"].max())
    r = run_vector(plan, copy_buffers(bufs))
    assert float(r.scalars["x"]) == pytest.approx(expected)


def test_remainder_iterations_execute():
    """Trip not divisible by VF: the scalar tail must run."""
    from repro.ir import KernelBuilder

    k = KernelBuilder("rem")
    a, b = k.arrays("a", "b", )
    i = k.loop(77)  # 77 % 4 == 1
    a[i] = b[i] + 1.0
    kern = k.build()
    plan = vectorize_loop(kern, ARMV8_NEON)
    bufs = make_buffers(kern, seed=9)
    expected = bufs["b"][:77] + np.float32(1.0)
    run_vector(plan, bufs)
    np.testing.assert_allclose(bufs["a"][:77], expected, rtol=1e-6)
