"""SLP lowering internals: guard-prob expansion, hybrid streams."""

from repro.codegen.slp_gen import _count_guards, _expanded_guard_probs, lower_slp
from repro.sim.timing import analyze_stream
from repro.targets import X86_AVX2
from repro.targets.classes import IClass
from repro.vectorize import slp_vectorize

from tests.helpers import build


def guarded_mixed(k):
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(256)
    a[i] = b[i] * 2.0  # packable
    with k.if_(c[i] > 0.0):  # stays scalar (SLP has no if-conversion)
        c[i] = b[i] + 1.0


def test_count_guards():
    kern = build("t", guarded_mixed)
    assert _count_guards(kern.body[0]) == 0
    assert _count_guards(kern.body[1]) == 1


def test_expanded_probs_replicated_per_copy():
    kern = build("t", guarded_mixed)
    expanded = _expanded_guard_probs(
        kern, packed=frozenset({0}), factor=4, original={0: 0.3}
    )
    # The one original guard expands to 4 copies with the same prob.
    assert expanded == {0: 0.3, 1: 0.3, 2: 0.3, 3: 0.3}


def test_expanded_probs_skip_packed_guards():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = b[i] * 2.0

    kern = build("t", body)
    assert _expanded_guard_probs(kern, frozenset({0}), 8, {}) == {}


def test_hybrid_stream_has_scalar_guard_weights():
    kern = build("t", guarded_mixed)
    plan = slp_vectorize(kern, X86_AVX2)
    assert plan.packed_stmts == {0}
    stream = lower_slp(plan, X86_AVX2)
    # The guarded scalar copies carry a measured (~0.5) weight.
    guarded_stores = [
        ins
        for ins in stream.body
        if ins.iclass is IClass.STORE and ins.lanes == 1
    ]
    assert len(guarded_stores) == 8
    assert all(0.1 < ins.weight < 0.9 for ins in guarded_stores)
    # The packed statement is full-width.
    vec_store = [
        ins
        for ins in stream.body
        if ins.iclass is IClass.STORE and ins.lanes == 8
    ]
    assert len(vec_store) == 1


def test_slp_stream_timing_finite():
    kern = build("t", guarded_mixed)
    plan = slp_vectorize(kern, X86_AVX2)
    stream = lower_slp(plan, X86_AVX2)
    br = analyze_stream(stream, X86_AVX2)
    assert 0 < br.total < float("inf")


def test_slp_reduction_gets_epilogue():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(256)
        a[i] = b[i] * 2.0
        s.set(s + b[i])

    kern = build("t", body)
    plan = slp_vectorize(kern, X86_AVX2)
    assert plan.packed_stmts == {0, 1}
    stream = lower_slp(plan, X86_AVX2)
    assert any(ins.iclass is IClass.REDUCE for ins in stream.epilogue)
