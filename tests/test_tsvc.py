"""TSVC suite integrity tests: size, structure, and verdict spot checks."""

import pytest

from repro.targets import ARMV8_NEON, X86_AVX2
from repro.tsvc import (
    Dims,
    all_kernels,
    get_entry,
    get_kernel,
    kernel_names,
    kernels_by_category,
    suite_size,
)
from repro.vectorize import vectorize_loop
from repro.vectorize.plan import VectorizationFailure, VectorizationPlan

from tests.helpers import SMALL


class TestSuiteIntegrity:
    def test_exactly_151_kernels(self):
        # The paper evaluates "151 basic loop patterns".
        assert suite_size() == 151

    def test_all_build_and_verify(self):
        assert sum(1 for _ in all_kernels()) == 151

    def test_names_unique_and_sorted(self):
        names = kernel_names()
        assert len(names) == len(set(names)) == 151

    def test_well_known_names_present(self):
        names = set(kernel_names())
        for expected in (
            "s000", "s111", "s1119", "s128", "s176", "s211", "s2244",
            "s273", "s311", "s314", "s319", "s332", "s352", "s491",
            "s4117", "va", "vbor", "vsumr",
        ):
            assert expected in names

    def test_categories_nonempty(self):
        cats = kernels_by_category()
        assert len(cats) >= 20
        assert all(v for v in cats.values())

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            get_kernel("s9999")

    def test_dims_scaling(self):
        small = get_kernel("s000", SMALL)
        assert small.inner.trip == SMALL.n
        assert small.arrays["a"].extents == (SMALL.n,)
        std = get_kernel("s000")
        assert std.inner.trip == 32000

    def test_dims_validation(self):
        with pytest.raises(ValueError):
            Dims(n=100)  # not a multiple of 8
        with pytest.raises(ValueError):
            Dims(n=16)  # too small

    def test_notes_on_approximated_kernels(self):
        for name in ("s123", "s141", "s332", "s471", "s481"):
            assert get_entry(name).notes, f"{name} should document its approximation"

    def test_kernel_cache_per_dims(self):
        k1 = get_kernel("s000")
        k2 = get_kernel("s000")
        assert k1 is k2
        k3 = get_kernel("s000", SMALL)
        assert k3 is not k1


#: Kernels LLV must vectorize on NEON, by construction of the suite.
EXPECT_VECTORIZABLE = [
    "s000", "s111", "s112", "s1119", "s119", "s124", "s127", "s128",
    "s131", "s152", "s173", "s271", "s274", "s278", "s311", "s312",
    "s313", "s314", "s319", "s3111", "s351", "s352", "s421", "s423",
    "s491", "s4112", "s4115", "va", "vag", "vas", "vif", "vbor",
    "vsumr", "vdotr", "s2244", "s3251", "s1281", "s291",
]

#: Kernels that must NOT vectorize (serial recurrences, unknown deps,
#: compress patterns, early exits, …).
EXPECT_NOT_VECTORIZABLE = [
    "s113", "s114", "s115", "s116", "s123", "s126", "s141", "s162",
    "s211", "s212", "s221", "s222", "s231", "s242", "s252", "s253",
    "s254", "s258", "s281", "s293", "s315", "s318", "s321", "s322",
    "s323", "s331", "s332", "s341", "s342", "s343", "s453", "s471",
    "s481", "s482", "s3110", "s3112", "s2111",
]


@pytest.mark.parametrize("name", EXPECT_VECTORIZABLE)
def test_expected_vectorizable_on_neon(name):
    plan = vectorize_loop(get_kernel(name, SMALL), ARMV8_NEON)
    assert isinstance(plan, VectorizationPlan), f"{name}: {plan}"


@pytest.mark.parametrize("name", EXPECT_NOT_VECTORIZABLE)
def test_expected_not_vectorizable_on_neon(name):
    plan = vectorize_loop(get_kernel(name, SMALL), ARMV8_NEON)
    assert isinstance(plan, VectorizationFailure), f"{name} unexpectedly vectorized"


class TestTargetDependentVerdicts:
    def test_s1221_distance4_splits_targets(self):
        """b[i+4] = b[i] + …: legal at VF 4 (NEON), illegal at VF 8 (AVX2)."""
        kern = get_kernel("s1221", SMALL)
        assert isinstance(vectorize_loop(kern, ARMV8_NEON), VectorizationPlan)
        assert isinstance(vectorize_loop(kern, X86_AVX2), VectorizationFailure)

    def test_s424_distance4_splits_targets(self):
        kern = get_kernel("s424", SMALL)
        assert isinstance(vectorize_loop(kern, ARMV8_NEON), VectorizationPlan)
        assert isinstance(vectorize_loop(kern, X86_AVX2), VectorizationFailure)

    def test_s422_distance8_legal_both(self):
        kern = get_kernel("s422", SMALL)
        assert isinstance(vectorize_loop(kern, ARMV8_NEON), VectorizationPlan)
        assert isinstance(vectorize_loop(kern, X86_AVX2), VectorizationPlan)


class TestVectorizationRate:
    def test_roughly_sixty_percent_vectorize_on_neon(self):
        """LLVM 6.0 vectorized roughly half to two-thirds of TSVC."""
        ok = 0
        for kern in all_kernels(SMALL):
            if isinstance(vectorize_loop(kern, ARMV8_NEON), VectorizationPlan):
                ok += 1
        assert 75 <= ok <= 110, f"{ok}/151 vectorized"
