"""Timing-model tests on hand-built instruction streams."""

import pytest

from repro.codegen.minstr import StreamBuilder
from repro.ir.types import DType
from repro.sim.timing import (
    analyze_stream,
    memory_bound,
    recurrence_bound,
    resource_bound,
)
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.targets.classes import IClass


def stream_with(emits, iters=100, ws=1024):
    b = StreamBuilder("t")
    for args in emits:
        b.emit(*args[0], **args[1])
    s = b.stream
    s.iters = iters
    s.working_set_bytes = ws
    return s


def _e(iclass, dtype=DType.F32, **kw):
    return ((iclass, dtype), kw)


class TestResourceBound:
    def test_single_port_saturation(self):
        # Two loads on ARM's single load port -> 2 cycles/iter.
        s = stream_with([_e(IClass.LOAD), _e(IClass.LOAD)])
        assert resource_bound(s.body, ARMV8_NEON) == pytest.approx(2.0)

    def test_two_fp_pipes_share(self):
        s = stream_with([_e(IClass.ADD), _e(IClass.ADD)])
        assert resource_bound(s.body, ARMV8_NEON) == pytest.approx(1.0)

    def test_issue_width_limits(self):
        # 6 int adds on ARM: int ports bound 6/2 = 3; issue 6/3 = 2.
        s = stream_with([_e(IClass.ADD, DType.I32)] * 6)
        assert resource_bound(s.body, ARMV8_NEON) == pytest.approx(3.0)

    def test_weights_scale_occupancy(self):
        s = stream_with([_e(IClass.LOAD, weight=0.5), _e(IClass.LOAD, weight=0.5)])
        assert resource_bound(s.body, ARMV8_NEON) == pytest.approx(1.0)

    def test_div_occupancy(self):
        # Scalar f32 div occupies the fp port for 7 cycles (2 pipes).
        s = stream_with([_e(IClass.DIV)])
        assert resource_bound(s.body, ARMV8_NEON) == pytest.approx(3.5)

    def test_monotone_in_instruction_count(self):
        small = stream_with([_e(IClass.ADD)] * 2)
        big = stream_with([_e(IClass.ADD)] * 8)
        assert resource_bound(big.body, ARMV8_NEON) > resource_bound(
            small.body, ARMV8_NEON
        )


class TestRecurrenceBound:
    def test_self_carried_reduction(self):
        b = StreamBuilder("t")
        add = b.emit(IClass.ADD, DType.F32)
        b.add_carried(add, add, 1)
        # f32 add latency 4 on the NEON model.
        assert recurrence_bound(b.stream.body, ARMV8_NEON) == pytest.approx(4.0)

    def test_distance_divides(self):
        b = StreamBuilder("t")
        add = b.emit(IClass.ADD, DType.F32)
        b.add_carried(add, add, 4)
        assert recurrence_bound(b.stream.body, ARMV8_NEON) == pytest.approx(1.0)

    def test_memory_chain(self):
        # load -> add -> store, store feeds next iteration's load.
        b = StreamBuilder("t")
        ld = b.emit(IClass.LOAD, DType.F32)
        add = b.emit(IClass.ADD, DType.F32, srcs=(ld,))
        st = b.emit(IClass.STORE, DType.F32, srcs=(add,))
        b.add_carried(ld, st, 1)
        # 4 (load) + 4 (add) + 1 (store) = 9 cycles per iteration.
        assert recurrence_bound(b.stream.body, ARMV8_NEON) == pytest.approx(9.0)

    def test_no_return_path_no_cycle(self):
        # The carried consumer's value never reaches the producer.
        b = StreamBuilder("t")
        ld = b.emit(IClass.LOAD, DType.F32)
        st = b.emit(IClass.STORE, DType.F32)  # independent of ld
        b.add_carried(ld, st, 1)
        assert recurrence_bound(b.stream.body, ARMV8_NEON) == 0.0

    def test_longest_path_wins(self):
        b = StreamBuilder("t")
        ld = b.emit(IClass.LOAD, DType.F32)
        short = b.emit(IClass.ADD, DType.F32, srcs=(ld,))
        long1 = b.emit(IClass.DIV, DType.F32, srcs=(ld,))
        st = b.emit(IClass.STORE, DType.F32, srcs=(short, long1))
        b.add_carried(ld, st, 1)
        # Path through the divide: 4 + 13 + 1 = 18.
        assert recurrence_bound(b.stream.body, ARMV8_NEON) == pytest.approx(18.0)


class TestMemoryBound:
    def test_l1_resident(self):
        s = stream_with([_e(IClass.LOAD, traffic=16, mem_array="", mem_stride=None)], ws=1024)
        # L1 bandwidth on the ARM model is 32 B/cycle.
        assert memory_bound(s, ARMV8_NEON) == pytest.approx(16 / 32)

    def test_larger_working_set_slower(self):
        def mk(ws):
            return stream_with(
                [_e(IClass.LOAD, traffic=32, mem_array="", mem_stride=None)], ws=ws
            )
        l1 = memory_bound(mk(1024), ARMV8_NEON)
        l2 = memory_bound(mk(512 * 1024), ARMV8_NEON)
        dram = memory_bound(mk(64 * 1024 * 1024), ARMV8_NEON)
        assert l1 < l2 < dram

    def test_group_traffic_shared(self):
        # 4 accesses covering consecutive offsets at stride 4: one
        # 16-byte window, not 4 cache lines.
        emits = [
            _e(IClass.LOAD, mem_array="a", mem_stride=4) for _ in range(4)
        ]
        s = stream_with(emits)
        assert s.bytes_per_iter() == pytest.approx(16.0)

    def test_sparse_group_capped_by_lines(self):
        s = stream_with([_e(IClass.LOAD, mem_array="a", mem_stride=1000)])
        assert s.bytes_per_iter() == pytest.approx(64.0)  # one line

    def test_loads_and_stores_separate_groups(self):
        emits = [
            _e(IClass.LOAD, mem_array="a", mem_stride=1),
            _e(IClass.STORE, mem_array="a", mem_stride=1),
        ]
        s = stream_with(emits)
        assert s.bytes_per_iter() == pytest.approx(8.0)


class TestBreakdown:
    def test_total_includes_overhead(self):
        b = StreamBuilder("t")
        b.in_prologue()
        b.emit(IClass.BROADCAST, DType.F32, lanes=4)
        b.in_body()
        b.emit(IClass.ADD, DType.F32, lanes=4)
        b.in_epilogue()
        b.emit(IClass.REDUCE, DType.F32, lanes=4)
        s = b.stream
        s.iters = 10
        s.working_set_bytes = 100
        br = analyze_stream(s, ARMV8_NEON)
        assert br.overhead == pytest.approx(5 + 8)  # broadcast + reduce latency
        assert br.total == pytest.approx(br.overhead + 10 * br.per_iter)

    def test_bound_labels(self):
        b = StreamBuilder("t")
        add = b.emit(IClass.ADD, DType.F32)
        s = b.stream
        s.iters = 1
        s.working_set_bytes = 100
        assert analyze_stream(s, ARMV8_NEON).bound == "compute"
        b.add_carried(add, add, 1)
        assert analyze_stream(s, ARMV8_NEON).bound == "recurrence"

    def test_cycles_positive(self):
        s = stream_with([_e(IClass.ADD)])
        br = analyze_stream(s, X86_AVX2)
        assert br.per_iter > 0
        assert br.total > 0
