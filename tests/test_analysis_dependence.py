"""Dependence analysis tests: kinds, distances, directions, safety."""

import math

from repro.analysis.dependence import DepKind, DepStatus, analyze_dependences
from repro.ir import DType

from tests.helpers import build


def single_dep(kern):
    info = analyze_dependences(kern)
    assert len(info.dependences) == 1, info.dependences
    return info.dependences[0]


class TestNoDependence:
    def test_distinct_arrays(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        assert analyze_dependences(build("t", body)).dependences == []

    def test_odd_even_interleave(self):
        # a[2i+1] = a[2i]: offsets differ by 1, coeff 2 -> never alias.
        def body(k):
            a = k.array("a")
            i = k.loop(64)
            a[2 * i + 1] = a[2 * i] * 2.0

        assert analyze_dependences(build("t", body)).dependences == []

    def test_distinct_invariant_locations(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[3] + b[7]

        assert analyze_dependences(build("t", body)).dependences == []


class TestCarriedFlow:
    def test_backward_recurrence(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 1] + b[i]

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.FLOW
        assert dep.distance == 1
        assert not dep.forward
        assert not dep.safe_for_vf(4)
        assert dep.safe_for_vf(1)

    def test_distance_bounds_vf(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 5] + b[i]

        dep = single_dep(build("t", body))
        assert dep.distance == 5
        assert dep.safe_for_vf(4)
        assert dep.safe_for_vf(5)
        assert not dep.safe_for_vf(8)

    def test_forward_flow_is_safe(self):
        # store a[i] in stmt 0, read a[i-1] in stmt 1: the store
        # completes for all lanes before the load executes.
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[i] = b[i] + 0.0
            c[i] = a[i - 1] + 1.0

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.FLOW
        assert dep.forward
        assert dep.safe_for_vf(8)


class TestAnti:
    def test_same_statement_lookahead_safe(self):
        def body(k):
            a = k.array("a")
            i = k.loop(64)
            a[i] = a[i + 1] + 1.0

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.ANTI
        assert dep.distance == 1
        assert dep.forward  # loads execute before the statement's store
        assert dep.safe_for_vf(8)

    def test_backward_anti_unsafe(self):
        # store a[i] first, then another statement reads a[i+1]: lanes
        # 1..VF-1 of the read see freshly stored values in vector code.
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[i] = c[i] * 2.0
            b[i] = a[i + 1] + 1.0

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.ANTI
        assert not dep.forward
        assert not dep.safe_for_vf(4)


class TestOutput:
    def test_forward_output_safe(self):
        # a[i+1] then a[i]: later-in-time write is later in program
        # order, so vector execution keeps the final values right.
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i + 1] = b[i] + 1.0
            a[i] = b[i] * 2.0

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.OUTPUT
        assert dep.forward
        assert dep.safe_for_vf(8)

    def test_backward_output_unsafe(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0
            a[i + 1] = b[i] * 2.0

        dep = single_dep(build("t", body))
        assert dep.kind is DepKind.OUTPUT
        assert not dep.forward
        assert not dep.safe_for_vf(2)


class TestUnknown:
    def test_coefficient_mismatch(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[2 * i] + b[i]

        dep = single_dep(build("t", body))
        assert dep.status is DepStatus.UNKNOWN
        assert not dep.safe_for_vf(2)

    def test_invariant_conflict(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[7] + b[i]

        dep = single_dep(build("t", body))
        assert dep.status is DepStatus.UNKNOWN

    def test_indirect_store_with_read(self):
        def body(k):
            a = k.array("a")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(64)
            a[ip[i]] = a[i] + 1.0

        info = analyze_dependences(build("t", body))
        assert any(d.status is DepStatus.UNKNOWN for d in info.dependences)

    def test_pure_scatter_no_conflict(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(64)
            a[ip[i]] = b[i] + 1.0

        assert analyze_dependences(build("t", body)).dependences == []


class TestTwoDimensional:
    def test_outer_carried_is_inner_safe(self):
        def body(k):
            aa, bb = k.array2("aa"), k.array2("bb")
            i = k.loop(15)
            j = k.loop(16)
            aa[i + 1, j] = aa[i, j] + bb[i, j]

        info = analyze_dependences(build("t", body))
        # The row-to-row dependence shows up with a huge inner distance.
        assert info.max_safe_vf() >= 8

    def test_inner_carried_unsafe(self):
        def body(k):
            aa, bb = k.array2("aa"), k.array2("bb")
            i = k.loop(16)
            j = k.loop(15)
            aa[i, j + 1] = aa[i, j] + bb[i, j]

        info = analyze_dependences(build("t", body))
        assert info.max_safe_vf() == 1

    def test_transposed_access_unknown(self):
        def body(k):
            aa, bb = k.array2("aa"), k.array2("bb")
            i = k.loop(16)
            j = k.loop(16)
            aa[i, j] = aa[j, i] + bb[i, j]

        info = analyze_dependences(build("t", body))
        assert any(d.status is DepStatus.UNKNOWN for d in info.dependences)


class TestMaxSafeVF:
    def test_unconstrained(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        assert analyze_dependences(build("t", body)).max_safe_vf() == math.inf

    def test_bounded_by_distance(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 6] + b[i]

        assert analyze_dependences(build("t", body)).max_safe_vf() == 6

    def test_serial(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 1] + b[i]

        assert analyze_dependences(build("t", body)).max_safe_vf() == 1
