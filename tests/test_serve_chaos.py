"""Service-level chaos gate, in miniature: the CI job's properties."""

from repro.serve.chaos import (
    DEFAULT_FAULT_SPEC,
    check_rollback,
    run_gate,
    suite_payloads,
)


def test_chaos_gate_small_run(tmp_path):
    """Faults fire, retries drain them, and all three gates hold."""
    report = run_gate(
        kernels=8,
        timeout=2.0,
        workers=2,
        registry_root=tmp_path / "registry",
        faults=(
            "slow_handler:0.25,worker_crash:0.25,"
            "corrupt_registry:0.2,toolchain_loss:0.25"
        ),
        seed=0,
        hang_s=0.4,
    )
    assert report["ok"], report
    assert report["lost_requests"] == []
    assert report["deadline_overruns"] == []
    assert report["verdict_mismatches"] == []
    assert report["faults_injected"] >= 1  # the schedule actually fired
    assert report["rollback"]["ok"]


def test_default_fault_spec_parses():
    from repro.pipeline.faultinject import parse_faults

    plan = parse_faults(DEFAULT_FAULT_SPEC, seed=0)
    assert set(plan.rates) == {
        "slow_handler",
        "worker_crash",
        "corrupt_registry",
        "toolchain_loss",
    }


def test_suite_payloads_roundtrip_and_fit_samples():
    selected = suite_payloads(4)
    assert len(selected) == 4
    for name, payload, sample in selected:
        assert payload["ir"]["name"] == name
        assert sample.name == name
        assert sample.vf >= 2


def test_check_rollback_reports_missing_model(tmp_path):
    from repro.serve import ModelRegistry

    out = check_rollback(
        ModelRegistry(tmp_path), target="armv8-neon", vectorizer="llv"
    )
    assert out["ok"] is False
