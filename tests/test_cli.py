"""CLI tests for ``python -m repro.experiments``."""

import pytest

from repro.experiments.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for eid in ("E1", "E11"):
        assert eid in out


def test_run_single(capsys):
    assert main(["E2", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out
    assert "measured speedup" in out
    assert "completed in" in out


def test_run_multiple(capsys):
    assert main(["E1", "E9", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E9" in out


def test_scatter_included_by_default(capsys):
    assert main(["E1"]) == 0
    out = capsys.readouterr().out
    assert "predicted ^" in out  # the text scatter's axis header


def test_unknown_id_raises():
    with pytest.raises(KeyError):
        main(["E42"])
