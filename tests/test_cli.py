"""CLI tests for ``python -m repro.experiments``."""

import pytest

from repro.experiments.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for eid in ("E1", "E11"):
        assert eid in out


def test_run_single(capsys):
    assert main(["E2", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out
    assert "measured speedup" in out
    assert "completed in" in out


def test_run_multiple(capsys):
    assert main(["E1", "E9", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E9" in out


def test_scatter_included_by_default(capsys):
    assert main(["E1"]) == 0
    out = capsys.readouterr().out
    assert "predicted ^" in out  # the text scatter's axis header


def test_unknown_id_raises():
    with pytest.raises(KeyError):
        main(["E42"])


def test_serial_flag(capsys):
    assert main(["E1", "E2", "--serial", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "suite: 2 experiments" in out
    assert "(serial, 1 job(s)" in out


def test_jobs_flag(capsys):
    assert main(["E1", "E2", "--jobs", "2", "--no-scatter"]) == 0
    out = capsys.readouterr().out
    assert "suite: 2 experiments" in out
    assert "2 job(s)" in out


def test_parallel_and_serial_tables_identical(capsys):
    assert main(["E1", "E3", "--no-scatter"]) == 0
    parallel_out = capsys.readouterr().out
    assert main(["E1", "E3", "--serial", "--no-scatter"]) == 0
    serial_out = capsys.readouterr().out

    def tables(text):
        # Strip the timing lines; the tables themselves must match.
        return [
            line
            for line in text.splitlines()
            if not (line.startswith("[") and "completed in" in line)
            and not line.startswith("[suite:")
        ]

    assert tables(parallel_out) == tables(serial_out)


def test_bench_writes_report(tmp_path, capsys):
    out_file = tmp_path / "bench.json"
    assert main(["E1", "E2", "--bench", "--bench-out", str(out_file)]) == 0
    assert out_file.exists()
    import json

    bench = json.loads(out_file.read_text())
    assert bench["ids"] == ["E1", "E2"]
    assert bench["parallel_serial_tables_identical"] is True
    assert bench["seed_engine_tables_identical_e1_e11"] is True
    for section in ("seed", "engine_cold", "engine_warm", "engine_serial"):
        assert bench[section]["total_s"] >= 0.0
    out = capsys.readouterr().out
    assert "bench written to" in out


def test_list_includes_e12(capsys):
    assert main(["--list"]) == 0
    assert "E12" in capsys.readouterr().out
