"""Unit tests for the kernel builder DSL."""

import pytest

from repro.ir import (
    Affine,
    ArrayStore,
    BinOp,
    BinOpKind,
    BuildError,
    Const,
    DType,
    IfBlock,
    Indirect,
    KernelBuilder,
    ScalarAssign,
    Select,
    fabs,
    fmax,
    fmin,
    fsqrt,
    select,
)


def test_simple_kernel():
    k = KernelBuilder("t", category="test")
    a, b = k.arrays("a", "b")
    i = k.loop(100)
    a[i] = b[i] + 1.0
    kern = k.build()
    assert kern.name == "t"
    assert kern.category == "test"
    assert kern.depth == 1
    assert kern.inner.trip == 100
    (store,) = kern.body
    assert isinstance(store, ArrayStore)
    assert store.subscript == (Affine((1,), 0),)


def test_index_arithmetic_offsets():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(100)
    a[i + 1] = a[2 * i] + a[i - 3] + a[-i + 50]
    kern = k.build()
    store = kern.body[0]
    assert store.subscript == (Affine((1,), 1),)
    subs = [ld.subscript[0] for ld in kern.loads()]
    assert Affine((2,), 0) in subs
    assert Affine((1,), -3) in subs
    assert Affine((-1,), 50) in subs


def test_constant_subscript():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    a[i] = b[5]
    (ld,) = list(k.build().loads())
    assert ld.subscript == (Affine((0,), 5),)


def test_two_level_nest():
    k = KernelBuilder("t")
    aa = k.array2("aa")
    i = k.loop(16)
    j = k.loop(16)
    aa[i, j] = aa[i, j - 1] + 1.0
    kern = k.build()
    assert kern.depth == 2
    (ld,) = list(kern.loads())
    assert ld.subscript == (Affine((1, 0), 0), Affine((0, 1), -1))


def test_mixed_index_sum():
    k = KernelBuilder("t")
    a = k.array("a", extents=(1000,))
    i = k.loop(16)
    j = k.loop(16)
    a[i + j] = 1.0
    store = k.build().body[0]
    assert store.subscript == (Affine((1, 1), 0),)


def test_indirect_subscript():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    ip = k.array("ip", dtype=DType.I32)
    i = k.loop(10)
    a[i] = b[ip[i + 1]]
    (ld,) = [x for x in k.build().loads() if x.array == "b"]
    assert ld.subscript == (Indirect("ip", Affine((1,), 1)),)


def test_indirect_through_float_array_rejected():
    k = KernelBuilder("t")
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(10)
    with pytest.raises(BuildError):
        a[i] = b[c[i]]


def test_scalar_param_and_set():
    k = KernelBuilder("t")
    a = k.array("a")
    s = k.scalar("s", init=2.5)
    i = k.loop(10)
    s.set(s + a[i])
    kern = k.build()
    assert kern.scalars["s"].init == 2.5
    (assign,) = kern.body
    assert isinstance(assign, ScalarAssign)


def test_if_else_blocks():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    with k.if_(b[i] > 0.0):
        a[i] = 1.0
    with k.else_():
        a[i] = 2.0
    (blk,) = k.build().body
    assert isinstance(blk, IfBlock)
    assert len(blk.then_body) == 1 and len(blk.else_body) == 1


def test_nested_if():
    k = KernelBuilder("t")
    a, b, c = k.arrays("a", "b", "c")
    i = k.loop(10)
    with k.if_(b[i] > 0.0):
        with k.if_(c[i] > 0.0):
            a[i] = 1.0
    (outer,) = k.build().body
    assert isinstance(outer.then_body[0], IfBlock)


def test_else_without_if_raises():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(10)
    a[i] = 1.0
    with pytest.raises(BuildError):
        with k.else_():
            pass


def test_double_else_raises():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    with k.if_(b[i] > 0.0):
        a[i] = 1.0
    with k.else_():
        a[i] = 2.0
    with pytest.raises(BuildError):
        with k.else_():
            a[i] = 3.0


def test_if_condition_must_be_bool():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(10)
    with pytest.raises(BuildError):
        k.if_(a[i])


def test_expr_has_no_truth_value():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(10)
    with pytest.raises(BuildError):
        bool(a[i] > 0.0)


def test_loop_after_statement_rejected():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(10)
    a[i] = 1.0
    with pytest.raises(BuildError):
        k.loop(10)


def test_three_loops_rejected():
    k = KernelBuilder("t")
    k.loop(4)
    k.loop(4)
    with pytest.raises(BuildError):
        k.loop(4)


def test_empty_body_rejected():
    k = KernelBuilder("t")
    k.array("a")
    k.loop(10)
    with pytest.raises(BuildError):
        k.build()


def test_no_loop_rejected():
    k = KernelBuilder("t")
    with pytest.raises(BuildError):
        k.build()


def test_duplicate_declaration_rejected():
    k = KernelBuilder("t")
    k.array("a")
    with pytest.raises(BuildError):
        k.array("a")
    with pytest.raises(BuildError):
        k.scalar("a")


def test_wrong_dims_subscript():
    k = KernelBuilder("t")
    aa = k.array2("aa")
    i = k.loop(10)
    with pytest.raises(BuildError):
        aa[i] = 1.0


def test_helper_functions_build_expected_nodes():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    a[i] = fmin(a[i], b[i]) + fmax(a[i], 0.0) + fabs(b[i]) + fsqrt(b[i])
    kern = k.build()
    text = str(kern.body[0])
    assert "min(" in text and "max(" in text and "abs(" in text and "sqrt(" in text


def test_select_helper():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    a[i] = select(b[i] > 0.0, b[i], 0.0)
    store = k.build().body[0]
    assert isinstance(store.value, Select)


def test_float_literal_coercion_to_array_dtype():
    k = KernelBuilder("t")
    a = k.array("a", dtype=DType.F64)
    i = k.loop(10)
    a[i] = a[i] + 1.0
    store = k.build().body[0]
    assert store.value.dtype is DType.F64


def test_reflected_operators():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    a[i] = 1.0 - b[i]
    store = k.build().body[0]
    assert isinstance(store.value, BinOp)
    assert store.value.op is BinOpKind.SUB
    assert isinstance(store.value.lhs, Const)


def test_iter_value_in_expression():
    k = KernelBuilder("t")
    a, b = k.arrays("a", "b")
    i = k.loop(10)
    a[i] = b[i] * (i + 1)
    kern = k.build()
    assert "i" in str(kern.body[0])


def test_index_times_handle_errors_cleanly():
    k = KernelBuilder("t")
    a = k.array("a")
    i = k.loop(10)
    # i*i is not affine; using it as a subscript must fail loudly.
    with pytest.raises(BuildError):
        a[i * i] = 1.0  # type: ignore[index]
