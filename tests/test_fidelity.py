"""Fidelity spot checks: instruction mixes and determinism.

These pin down the lowering of representative TSVC kernels (the
feature vectors the cost models are fitted on) and the end-to-end
determinism of the study.
"""

import numpy as np
import pytest

from repro.codegen import lower_scalar, lower_vector
from repro.costmodel import class_count, feature_vector
from repro.experiments.drivers import run_e1
from repro.sim import measure_kernel
from repro.targets import ARMV8_NEON, GENERIC_IR, X86_AVX2
from repro.targets.classes import IClass
from repro.tsvc import get_kernel
from repro.vectorize import vectorize_loop

from tests.helpers import build


def ir_counts(name, target=ARMV8_NEON):
    kern = get_kernel(name)
    plan = vectorize_loop(kern, target)
    assert not hasattr(plan, "reason"), f"{name}: {plan}"
    return lower_vector(plan, GENERIC_IR).counts(), plan.vf


class TestKnownInstructionMixes:
    def test_s000_minimal_block(self):
        counts, vf = ir_counts("s000")
        assert counts == {IClass.LOAD: 1, IClass.ADD: 1, IClass.STORE: 1}

    def test_vdotr_is_one_fma(self):
        counts, _ = ir_counts("vdotr")
        assert counts.get(IClass.FMA) == 1
        assert counts.get(IClass.LOAD) == 2
        assert IClass.MUL not in counts

    def test_vag_is_one_gather_at_ir_level(self):
        counts, _ = ir_counts("vag")
        assert counts.get(IClass.GATHER) == 1
        assert counts.get(IClass.LOAD) == 1  # the index vector

    def test_s491_is_one_scatter_at_ir_level(self):
        counts, _ = ir_counts("s491")
        assert counts.get(IClass.SCATTER) == 1

    def test_s271_guarded_fma(self):
        counts, _ = ir_counts("s271")
        assert counts.get(IClass.CMP) == 1
        assert counts.get(IClass.MASKSTORE) == 1
        assert counts.get(IClass.FMA) == 1

    def test_s127_interleaved_stores(self):
        counts, _ = ir_counts("s127")
        # Two stride-2 stores -> interleave shuffles appear.
        assert counts.get(IClass.SHUFFLE, 0) >= 2
        assert counts.get(IClass.STORE, 0) >= 2

    def test_s1112_reverse_shuffles(self):
        counts, _ = ir_counts("s1112")
        assert counts.get(IClass.SHUFFLE, 0) >= 2  # reversed load + store

    def test_s451_single_vector_call_at_ir_level(self):
        counts, _ = ir_counts("s451")
        assert counts.get(IClass.EXP) == 1

    def test_s314_reduction_block(self):
        counts, _ = ir_counts("s314")
        assert counts.get(IClass.CMP) == 1
        assert counts.get(IClass.BLEND) == 1
        # Horizontal reduce amortized over 8000 iterations.
        assert 0 < counts.get(IClass.REDUCE, 0) < 0.01


class TestImplicitConversions:
    def test_int_operand_in_float_expr_gets_cvt(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] * (i + 1)

        stream = lower_scalar(build("t", body), ARMV8_NEON)
        assert any(ins.iclass is IClass.CVT for ins in stream.body)

    def test_no_spurious_cvt_same_kind(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] * 2.0

        stream = lower_scalar(build("t", body), ARMV8_NEON)
        assert not any(ins.iclass is IClass.CVT for ins in stream.body)


class TestDeterminism:
    def test_measurement_bitwise_stable(self):
        kern = get_kernel("s273")
        a = measure_kernel(kern, ARMV8_NEON, jitter=0.02, seed=5)
        b = measure_kernel(kern, ARMV8_NEON, jitter=0.02, seed=5)
        assert a.scalar_cycles == b.scalar_cycles
        assert a.vector_cycles == b.vector_cycles

    def test_experiment_rows_stable(self):
        r1 = run_e1()
        r2 = run_e1()
        assert r1.rows == r2.rows

    def test_feature_vectors_stable(self):
        kern = get_kernel("vbor")
        m1 = measure_kernel(kern, X86_AVX2)
        m2 = measure_kernel(kern, X86_AVX2)
        np.testing.assert_array_equal(
            feature_vector(m1.ir_vector_stream),
            feature_vector(m2.ir_vector_stream),
        )


class TestScalarVectorMixParity:
    """Per-element arithmetic counts agree between scalar and vector
    lowering for clean kernels (packing overhead aside)."""

    @pytest.mark.parametrize("name", ["s000", "vpvtv", "vbor", "s152", "s1281"])
    def test_arith_parity(self, name):
        kern = get_kernel(name)
        plan = vectorize_loop(kern, ARMV8_NEON)
        s = feature_vector(lower_scalar(kern, ARMV8_NEON))
        v = feature_vector(lower_vector(plan, GENERIC_IR))
        for c in (IClass.ADD, IClass.MUL, IClass.FMA, IClass.DIV):
            assert class_count(s, c) == pytest.approx(
                class_count(v, c), abs=1e-6
            ), f"{name}: {c} count diverged"
