"""Dataset-construction tests (experiments.dataset)."""

import numpy as np
import pytest

from repro.experiments import ARM_LLV, Dataset, DatasetSpec, X86_SLP, build_dataset


def test_spec_labels():
    assert ARM_LLV.label == "armv8-neon/llv"
    assert X86_SLP.label == "x86-avx2/slp"


def test_spec_is_hashable_cache_key():
    assert DatasetSpec("armv8-neon", "llv") == ARM_LLV
    assert hash(DatasetSpec("armv8-neon", "llv")) == hash(ARM_LLV)


def test_build_rejects_mixed_args():
    with pytest.raises(TypeError):
        build_dataset(ARM_LLV, target="x86-avx2")


def test_kwargs_form():
    ds = build_dataset(target="armv8-neon", vectorizer="llv")
    assert ds is build_dataset(ARM_LLV)


def test_every_kernel_accounted_for():
    ds = build_dataset(ARM_LLV)
    names = set(ds.names()) | {n for n, _ in ds.failures}
    assert len(names) == 151


def test_failures_carry_reasons():
    ds = build_dataset(ARM_LLV)
    reasons = {r for _, r in ds.failures}
    assert "scalar recurrence" in reasons
    assert "unsafe memory dependence" in reasons


def test_jitter_zero_is_deterministic_shape():
    spec = DatasetSpec("armv8-neon", "llv", jitter=0.0)
    ds = build_dataset(spec)
    ds2 = build_dataset(DatasetSpec("armv8-neon", "llv", jitter=0.0))
    assert ds is ds2  # cached
    assert np.isfinite(ds.measured).all()


def test_jitter_changes_values_not_membership():
    clean = build_dataset(DatasetSpec("armv8-neon", "llv", jitter=0.0))
    noisy = build_dataset(ARM_LLV)  # jitter 0.02
    assert clean.names() == noisy.names()
    assert not np.allclose(clean.measured, noisy.measured)
    # Noise is small: medians agree to a few percent.
    assert np.median(clean.measured) == pytest.approx(
        np.median(noisy.measured), rel=0.05
    )


def test_len_and_iteration(tmp_path):
    ds = build_dataset(ARM_LLV)
    assert len(ds) == len(ds.samples)


def test_sample_lookup_is_indexed():
    ds = build_dataset(ARM_LLV)
    s = ds.sample("s000")
    assert s.name == "s000"
    assert s is ds._by_name["s000"]  # dict-backed, not a linear scan
    with pytest.raises(KeyError, match="not in dataset"):
        ds.sample("no-such-kernel")


def test_duplicate_kernel_names_rejected():
    ds = build_dataset(ARM_LLV)
    with pytest.raises(ValueError, match="duplicate kernel"):
        Dataset(ARM_LLV, samples=[ds.samples[0], ds.samples[0]])


def test_workers_not_in_measurement_identity():
    """Any worker count returns the same memoized dataset object."""
    ds = build_dataset(ARM_LLV)
    assert build_dataset(DatasetSpec("armv8-neon", "llv", workers=2)) is ds
    assert ARM_LLV.identity == ("armv8-neon", "llv", 0.02, 0)
