"""Fault-tolerant sweep semantics (repro.pipeline.resilience).

The load-bearing property: whatever the supervisor has to absorb —
crashes, hangs, flaky exceptions, torn journals, corrupted cache
entries — once retries drain, the surviving samples are *bit-identical*
to a clean serial sweep.  Injected faults are deterministic (seeded),
so each scenario either converges or it doesn't; there is no flake.
"""

import os

import numpy as np
import pytest

from repro.experiments import DatasetSpec
from repro.pipeline import (
    CheckpointJournal,
    FaultPlan,
    MeasurementCache,
    RetryPolicy,
    SweepError,
    measure_suite,
    parse_faults,
    pipeline_diagnostics,
)
from repro.pipeline.resilience import PASS_NAME, FailureReport, KernelFailure

SPEC = DatasetSpec("armv8-neon", "llv")

#: Retries that never sleep — chaos convergence without wall-clock cost.
FAST = RetryPolicy(max_attempts=5, base_delay=0.0)


def no_cache(tmp_path):
    return MeasurementCache(root=tmp_path / "off", enabled=False)


def clean_sweep(tmp_path):
    return measure_suite(SPEC, workers=1, cache=no_cache(tmp_path))


def assert_samples_identical(left, right):
    assert [s.name for s in left] == [s.name for s in right]
    for a, b in zip(left, right):
        assert a.measured_speedup == b.measured_speedup
        assert a.measured_scalar_cpi == b.measured_scalar_cpi
        assert a.measured_vector_cpi == b.measured_vector_cpi
        assert np.array_equal(a.scalar_features, b.scalar_features)
        assert np.array_equal(a.vector_features, b.vector_features)
        assert np.array_equal(a.lowered_features, b.lowered_features)


# -- retry policy ------------------------------------------------------------


def test_retry_policy_backoff_grows_and_caps():
    policy = RetryPolicy(max_attempts=5, base_delay=0.1, cap=0.5)
    delays = [policy.delay("s000", a) for a in range(5)]
    # Exponential up to the cap, modulo the ±25% jitter band.
    for attempt, d in enumerate(delays):
        raw = min(0.1 * 2**attempt, 0.5)
        assert 0.75 * raw <= d <= 1.25 * raw
    # Deterministic: same (kernel, attempt) -> same delay.
    assert policy.delay("s000", 2) == policy.delay("s000", 2)
    # De-synchronized across kernels.
    assert policy.delay("s000", 2) != policy.delay("s111", 2)


def test_retry_policy_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    assert RetryPolicy(base_delay=0.0).delay("s000", 3) == 0.0


# -- fault plans -------------------------------------------------------------


def test_parse_faults_roundtrip():
    plan = parse_faults("crash:0.1, hang:0.05,flaky_exc:1")
    assert plan.rate("crash") == 0.1
    assert plan.rate("hang") == 0.05
    assert plan.rate("flaky_exc") == 1.0
    assert plan.rate("corrupt_cache") == 0.0
    assert parse_faults("") is None
    assert parse_faults("   ") is None


@pytest.mark.parametrize(
    "bad", ["crash", "crash:lots", "segfault:0.5", "crash:1.5", "hang:-0.1"]
)
def test_parse_faults_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_faults(bad)


def test_fault_plan_is_deterministic_and_drains():
    plan = FaultPlan(rates={"flaky_exc": 0.5}, seed=7)
    verdicts = [plan.decide("flaky_exc", "s000", a) for a in range(20)]
    assert verdicts == [
        plan.decide("flaky_exc", "s000", a) for a in range(20)
    ]
    assert any(verdicts) and not all(verdicts)  # drains under retries
    assert not FaultPlan(rates={"crash": 0.0}).decide("crash", "s000", 0)
    assert FaultPlan(rates={"crash": 1.0}).decide("crash", "s000", 0)


# -- chaos convergence: faulted sweep ≡ clean sweep --------------------------


def test_flaky_exceptions_converge_serial(tmp_path):
    clean, clean_fail = clean_sweep(tmp_path)
    plan = FaultPlan(rates={"flaky_exc": 0.3}, seed=0)
    samples, failures, report = measure_suite(
        SPEC,
        workers=1,
        cache=no_cache(tmp_path),
        faults=plan,
        retry=FAST,
        partial=True,
    )
    assert not report.quarantined
    assert report.retries > 0
    assert failures == clean_fail
    assert_samples_identical(clean, samples)


def test_worker_crashes_converge_parallel(tmp_path):
    clean, clean_fail = clean_sweep(tmp_path)
    plan = FaultPlan(rates={"crash": 0.1, "flaky_exc": 0.1}, seed=0)
    samples, failures, report = measure_suite(
        SPEC,
        workers=2,
        cache=no_cache(tmp_path),
        faults=plan,
        retry=FAST,
        partial=True,
    )
    assert not report.quarantined
    assert report.pool_rebuilds > 0  # crashes actually happened
    assert failures == clean_fail
    assert_samples_identical(clean, samples)


def test_hung_workers_recovered_by_deadline(tmp_path):
    clean, clean_fail = clean_sweep(tmp_path)
    plan = FaultPlan(rates={"hang": 0.02}, seed=3, hang_seconds=5.0)
    samples, failures, report = measure_suite(
        SPEC,
        workers=2,
        cache=no_cache(tmp_path),
        faults=plan,
        timeout=0.75,
        retry=FAST,
        partial=True,
    )
    assert not report.quarantined
    assert report.pool_rebuilds > 0  # at least one pool was put down
    assert failures == clean_fail
    assert_samples_identical(clean, samples)


def test_in_process_crash_is_contained(tmp_path):
    """Serial sweeps must survive crash faults without dying themselves."""
    clean, clean_fail = clean_sweep(tmp_path)
    plan = FaultPlan(rates={"crash": 0.2}, seed=1)
    samples, failures, report = measure_suite(
        SPEC,
        workers=1,
        cache=no_cache(tmp_path),
        faults=plan,
        retry=FAST,
        partial=True,
    )
    assert not report.quarantined
    assert failures == clean_fail
    assert_samples_identical(clean, samples)


# -- quarantine --------------------------------------------------------------


def test_quarantine_after_max_attempts(tmp_path):
    plan = FaultPlan(rates={"flaky_exc": 1.0}, seed=0)  # never succeeds
    policy = RetryPolicy(max_attempts=2, base_delay=0.0)
    samples, failures, report = measure_suite(
        SPEC,
        workers=1,
        cache=no_cache(tmp_path),
        faults=plan,
        retry=policy,
        partial=True,
    )
    assert samples == [] and failures == []
    assert len(report) == 151  # the whole suite gave up
    for fail in report.quarantined:
        assert fail.attempts == 2
        assert len(fail.error_chain) == 2
        assert "InjectedFault" in fail.error_chain[-1]
        assert fail.wall_time_s >= 0.0
    # Quarantine is visible through the diagnostics engine too.
    remarks = pipeline_diagnostics().remarks(
        kernel="s000", pass_name=PASS_NAME
    )
    assert any("quarantined after 2 attempts" in r.message for r in remarks)


def test_non_partial_sweep_raises_sweep_error(tmp_path):
    plan = FaultPlan(rates={"flaky_exc": 1.0}, seed=0)
    with pytest.raises(SweepError, match="quarantined") as exc_info:
        measure_suite(
            SPEC,
            workers=1,
            cache=no_cache(tmp_path),
            faults=plan,
            retry=RetryPolicy(max_attempts=1, base_delay=0.0),
        )
    assert len(exc_info.value.report) == 151


def test_failure_report_shapes():
    report = FailureReport(
        quarantined=[
            KernelFailure("s000", 3, 1.5, ("RuntimeError: boom",) * 3)
        ],
        retries=4,
        pool_rebuilds=1,
    )
    assert bool(report) and len(report) == 1
    assert report.names() == ["s000"]
    assert "s000 (3 attempts" in report.summary()
    d = report.as_dict()
    assert d["retries"] == 4 and d["quarantined"][0]["name"] == "s000"
    assert not FailureReport()
    assert FailureReport().summary() == "no kernels quarantined"


# -- checkpoint / resume -----------------------------------------------------


def test_journal_roundtrip_and_torn_tail(tmp_path):
    journal = CheckpointJournal.for_sweep(tmp_path, "deadbeef")
    journal.append("fp1", "s000", (None, "a"))
    journal.append("fp2", "s111", (None, "b"))
    with open(journal.path, "ab") as f:
        f.write(b"\x80\x05torn mid-write")  # a record the crash cut short
    entries = journal.load()
    assert entries == {"fp1": (None, "a"), "fp2": (None, "b")}
    # The torn tail was truncated away: appending again stays loadable.
    journal.append("fp3", "s112", (None, "c"))
    assert set(journal.load()) == {"fp1", "fp2", "fp3"}
    # Stale fingerprints (code drift) are filtered out.
    assert set(journal.load(valid={"fp1"})) == {"fp1"}
    journal.discard()
    assert not journal.path.exists()


def test_completed_sweep_discards_journal(tmp_path):
    ckpt = tmp_path / "ckpt"
    measure_suite(
        SPEC, workers=1, cache=no_cache(tmp_path), checkpoint_dir=ckpt
    )
    assert list(ckpt.glob("*.journal")) == []


def test_resume_remeasures_only_incomplete_kernels(tmp_path, monkeypatch):
    """Kill a sweep mid-run (simulated), resume, and count the work."""
    import repro.pipeline.build as build_mod
    from repro.pipeline.build import _resolve_journal
    from repro.pipeline.fingerprint import measurement_fingerprint
    from repro.tsvc.suite import all_kernels

    clean, clean_fail = clean_sweep(tmp_path)
    ckpt = tmp_path / "ckpt"
    kernels = list(all_kernels())
    done = [k.name for k in kernels[:40]]

    # Fabricate the journal an interrupted sweep would have left: the
    # first 40 kernels completed, then the process died mid-record.
    journal = _resolve_journal(SPEC, ckpt)
    for name, payload in build_mod._run_pending(SPEC, done, 1):
        fp = measurement_fingerprint(
            next(k for k in kernels if k.name == name),
            SPEC.target,
            SPEC.vectorizer,
            SPEC.jitter,
            SPEC.seed,
        )
        journal.append(fp, name, payload)
    with open(journal.path, "ab") as f:
        f.write(b"\x80\x05half-a-record")

    measured = []
    original = build_mod._measure_named

    def counting(name, *args, **kwargs):
        measured.append(name)
        return original(name, *args, **kwargs)

    monkeypatch.setattr(build_mod, "_measure_named", counting)
    samples, failures = measure_suite(
        SPEC,
        workers=1,
        cache=no_cache(tmp_path),
        checkpoint_dir=ckpt,
        resume=True,
    )
    assert sorted(set(measured)) == sorted(
        k.name for k in kernels if k.name not in done
    )
    assert failures == clean_fail
    assert_samples_identical(clean, samples)


def test_fresh_sweep_ignores_stale_journal(tmp_path):
    """Without --resume an existing journal is discarded, not replayed."""
    from repro.pipeline.build import _resolve_journal

    ckpt = tmp_path / "ckpt"
    journal = _resolve_journal(SPEC, ckpt)
    journal.append("bogus-fp", "s000", (None, "poison"))
    clean, _ = clean_sweep(tmp_path)
    samples, _ = measure_suite(
        SPEC,
        workers=1,
        cache=no_cache(tmp_path),
        checkpoint_dir=ckpt,
        resume=False,
    )
    assert_samples_identical(clean, samples)


# -- cache corruption --------------------------------------------------------


def test_corrupted_cache_entries_are_remeasured(tmp_path):
    clean, clean_fail = clean_sweep(tmp_path)
    cache = MeasurementCache(root=tmp_path / "cache")
    plan = FaultPlan(rates={"corrupt_cache": 1.0}, seed=0)
    first, _, report = measure_suite(
        SPEC, workers=1, cache=cache, faults=plan, partial=True
    )
    assert not report.quarantined
    assert cache.stats.stores == 151  # every entry written, then torn
    # The next (fault-free) sweep must detect the damage and re-measure
    # rather than serving garbage.
    warm, warm_fail = measure_suite(SPEC, workers=1, cache=cache)
    assert cache.stats.corrupt == 151
    assert warm_fail == clean_fail
    assert_samples_identical(clean, warm)


def test_cache_put_leaves_no_temp_file_on_failure(tmp_path, monkeypatch):
    cache = MeasurementCache(root=tmp_path / "cache")

    def failing_replace(src, dst):
        raise OSError("simulated rename failure")

    monkeypatch.setattr(os, "replace", failing_replace)
    cache.put("ab" * 32, (None, "x"))
    monkeypatch.undo()
    assert cache.stats.write_errors == 1
    assert cache.stats.stores == 0
    leftovers = [
        p for p in (tmp_path / "cache").rglob("*") if p.is_file()
    ]
    assert leftovers == []  # no orphaned temp file


# -- graceful degradation ----------------------------------------------------


def test_degrades_to_serial_when_pool_unavailable(tmp_path, monkeypatch):
    import repro.pipeline.resilience as res_mod

    def no_pool(*args, **kwargs):
        raise OSError("multiprocessing forbidden in this sandbox")

    monkeypatch.setattr(res_mod, "ProcessPoolExecutor", no_pool)
    pipeline_diagnostics().clear()
    clean, clean_fail = clean_sweep(tmp_path)
    # A per-kernel timeout forces a pool request — without one the
    # cost-aware scheduler may legitimately choose serial upfront and
    # the degradation path under test would never run.
    samples, failures, report = measure_suite(
        SPEC, workers=4, cache=no_cache(tmp_path), partial=True, timeout=600.0
    )
    assert report.degraded_to_serial
    assert not report.quarantined
    assert failures == clean_fail
    assert_samples_identical(clean, samples)
    remarks = pipeline_diagnostics().remarks(pass_name=PASS_NAME)
    assert any("degrading to serial" in r.message for r in remarks)


# -- partial datasets downstream ---------------------------------------------


def test_dataset_carries_quarantine_report():
    from repro.experiments.dataset import Dataset
    from repro.experiments.reporting import quarantine_summary

    report = FailureReport(
        quarantined=[KernelFailure("s999", 3, 0.1, ("RuntimeError: x",))]
    )
    ds = Dataset(SPEC, samples=[], failures=[], quarantined=report)
    assert len(ds.quarantined) == 1
    assert "s999" in quarantine_summary(ds.quarantined)
    assert quarantine_summary(FailureReport()) == "none"


def test_env_faults_spec_parsing(monkeypatch):
    from repro.pipeline import plan_from_env

    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert plan_from_env() is None
    monkeypatch.setenv("REPRO_FAULTS", "flaky_exc:0.25")
    monkeypatch.setenv("REPRO_FAULTS_SEED", "9")
    plan = plan_from_env()
    assert plan.rate("flaky_exc") == 0.25
    assert plan.seed == 9


# -- journal schema versioning ----------------------------------------------


def test_journal_foreign_schema_skipped_with_remark(tmp_path):
    import pickle

    from repro.pipeline.resilience import (
        JOURNAL_SCHEMA,
        CheckpointJournal,
        pipeline_diagnostics,
    )

    journal = CheckpointJournal.for_sweep(tmp_path, "fe0001")
    journal.path.parent.mkdir(parents=True, exist_ok=True)
    with open(journal.path, "wb") as f:
        pickle.dump({"journal_schema": JOURNAL_SCHEMA + 7}, f)
        pickle.dump(
            {"fingerprint": "fp1", "name": "s000", "payload": (None, "a")}, f
        )

    before = len(pipeline_diagnostics())
    assert journal.load() == {}  # skipped wholesale, not crashed
    remarks = list(pipeline_diagnostics())[before:]
    assert any(
        "schema" in r.message and r.pass_name == "measurement-pipeline"
        for r in remarks
    )


def test_journal_headerless_legacy_still_loads(tmp_path):
    import pickle

    from repro.pipeline.resilience import CheckpointJournal

    journal = CheckpointJournal.for_sweep(tmp_path, "fe0002")
    journal.path.parent.mkdir(parents=True, exist_ok=True)
    with open(journal.path, "wb") as f:  # pre-versioning layout
        pickle.dump(
            {"fingerprint": "fp1", "name": "s000", "payload": (None, "a")}, f
        )
    assert journal.load() == {"fp1": (None, "a")}


def test_journal_writes_schema_header_and_survives_roundtrip(tmp_path):
    import pickle

    from repro.pipeline.resilience import JOURNAL_SCHEMA, CheckpointJournal

    journal = CheckpointJournal.for_sweep(tmp_path, "fe0003")
    journal.append("fp1", "s000", (None, "a"))
    with open(journal.path, "rb") as f:
        header = pickle.load(f)
    assert header == {"journal_schema": JOURNAL_SCHEMA}
    assert journal.load() == {"fp1": (None, "a")}
    # The header survives a torn-tail trim.
    with open(journal.path, "ab") as f:
        f.write(b"\x80\x05torn")
    assert journal.load() == {"fp1": (None, "a")}
    with open(journal.path, "rb") as f:
        assert pickle.load(f) == {"journal_schema": JOURNAL_SCHEMA}
    journal.append("fp2", "s111", (None, "b"))
    assert set(journal.load()) == {"fp1", "fp2"}
