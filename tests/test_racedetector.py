"""Race detector: distance/direction vectors and blocking remarks."""

from repro.analysis.dependence import DepKind
from repro.analysis.framework import AnalysisManager, Direction, analyze_races
from repro.tsvc import get_kernel

from tests.helpers import build


def races_of(kern):
    return analyze_races(kern, AnalysisManager())


class TestVectors:
    def test_backward_distance_one(self):
        # s211-style: b[i] read, b[i+1] written -> flow dep, distance 1.
        kern = get_kernel("s211")
        report = races_of(kern)
        flow = [r for r in report.races if r.dep.kind is DepKind.FLOW]
        assert flow, "expected a flow dependence on s211"
        race = flow[0]
        assert race.vector.distances == (1,)
        assert race.vector.directions == (Direction.LT,)
        assert race.blocks_vf(4)
        assert not race.blocks_vf(1)

    def test_forward_small_distance_does_not_block(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[i] = b[i] + 1.0   # S0
            c[i] = a[i - 1]     # S1: reads last iteration's store, forward

        report = races_of(build("t", body))
        assert len(report.races) == 1
        race = report.races[0]
        assert race.vector.distances == (1,)
        assert race.dep.forward
        assert not race.blocks_vf(8)
        assert report.blocking(8) == []

    def test_unknown_distance_any_direction(self):
        kern = get_kernel("s1113")  # a[i] vs a[LEN/2]: runtime-unknown
        report = races_of(kern)
        assert report.races, "expected dependences on s1113"
        race = report.blocking(4)[0]
        assert race.vector.directions == (Direction.ANY,)
        assert race.vector.distances == (None,)

    def test_two_level_vector_outer_equal(self):
        def body(k):
            aa = k.array2("aa")
            i = k.loop(16)
            j = k.loop(16)
            aa[j + 1, i] = aa[j, i] + 1.0

        report = races_of(build("t", body))
        assert len(report.races) == 1
        vec = report.races[0].vector
        # Outer level contributes identically -> (=, <) with distances (0, 1).
        assert vec.directions == (Direction.EQ, Direction.LT)
        assert vec.distances == (0, 1)
        assert str(vec) == "direction (=, <), distance (0, 1)"


class TestRemarks:
    def test_remark_names_exact_access_pair(self):
        report = races_of(get_kernel("s211"))
        remarks = report.remarks(4)
        assert remarks, "a VF-4 blocking dependence must produce a remark"
        remark = remarks[0]
        assert remark.arg("array") == "b"
        assert remark.arg("src") == "store b[i+1]"
        assert remark.arg("sink") == "load b[i]"
        assert remark.arg("distance") == "1"
        assert remark.arg("direction") == "<"
        assert "store b[i+1]" in remark.message
        assert "load b[i]" in remark.message
        assert remark.format().startswith("s211:S")

    def test_no_remarks_when_safe(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        report = races_of(build("t", body))
        assert report.remarks(8) == []
        assert report.max_safe_vf() == float("inf")

    def test_distance_vs_vf_threshold(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 4] + b[i]

        report = races_of(build("t", body))
        assert report.blocking(4) == []
        assert len(report.blocking(8)) == 1
        assert report.max_safe_vf() == 4
        remark = report.remarks(8)[0]
        assert "distance 4 < VF 8" in remark.message
