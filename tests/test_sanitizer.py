"""Vector-safety sanitizer: dynamic cross-check of dependence claims."""

import dataclasses

import pytest

from repro.analysis.framework.sanitizer import (
    SanitizerError,
    check_dependence_claims,
    check_plan,
)
from repro.sim.executor import make_buffers, run_vector
from repro.targets import ARMV8_NEON
from repro.tsvc import get_kernel
from repro.vectorize import is_plan, vectorize_loop

from tests.helpers import build


def forward_dep_kernel():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        i = k.loop(64)
        a[i] = b[i] + 1.0   # S0: store a[i]
        c[i] = a[i - 1]     # S1: load a[i-1] -> flow dep, distance 1, fwd

    return build("fwd1", body)


def plan_of(kern, vf=None):
    plan = vectorize_loop(kern, ARMV8_NEON, vf=vf)
    assert is_plan(plan), f"expected a plan, got {plan}"
    return plan


def forge_distance(dep_info, delta=1):
    """Shift every finite nonzero claimed distance by ``delta``."""
    forged = tuple(
        dataclasses.replace(d, distance=d.distance + delta)
        if d.distance not in (None, 0)
        else d
        for d in dep_info.dependences
    )
    return dataclasses.replace(dep_info, dependences=forged)


class TestTruthfulClaims:
    def test_clean_builder_kernel(self):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        check_plan(plan, make_buffers(kern))  # must not raise

    @pytest.mark.parametrize(
        "name", ["s000", "s112", "s1119", "s4113", "s423", "s352"]
    )
    def test_suite_kernels_clean(self, name):
        kern = get_kernel(name)
        plan = vectorize_loop(kern, ARMV8_NEON)
        if not is_plan(plan):
            pytest.skip(f"{name} not vectorizable")
        check_plan(plan, make_buffers(kern))


class TestForgedClaims:
    def test_wrong_distance_is_caught(self):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        forged = forge_distance(plan.dep_info)
        with pytest.raises(SanitizerError, match="violates static claim"):
            check_dependence_claims(kern, forged, plan.vf, make_buffers(kern))

    def test_dropped_claim_is_caught(self):
        # Claiming "never aliases" for accesses that do conflict.
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        empty = dataclasses.replace(plan.dep_info, dependences=())
        with pytest.raises(SanitizerError, match="never alias"):
            check_dependence_claims(kern, empty, plan.vf, make_buffers(kern))

    def test_error_names_the_pair(self):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        forged = forge_distance(plan.dep_info)
        with pytest.raises(SanitizerError) as err:
            check_dependence_claims(kern, forged, plan.vf, make_buffers(kern))
        msg = str(err.value)
        assert "fwd1" in msg
        assert "'a'" in msg
        assert "S0" in msg and "S1" in msg


class TestExecutorIntegration:
    def test_run_vector_sanitize_flag(self):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        bufs = make_buffers(kern)
        run_vector(plan, bufs, sanitize=True)  # truthful: runs fine

    def test_run_vector_rejects_forged_plan_before_mutation(self):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        forged_plan = dataclasses.replace(
            plan, dep_info=forge_distance(plan.dep_info)
        )
        bufs = make_buffers(kern)
        baseline = {n: a.copy() for n, a in bufs.items()}
        with pytest.raises(SanitizerError):
            run_vector(forged_plan, bufs, sanitize=True)
        for name, arr in bufs.items():
            assert (arr == baseline[name]).all(), "buffers must be untouched"

    def test_env_var_opt_in(self, monkeypatch):
        kern = forward_dep_kernel()
        plan = plan_of(kern)
        forged_plan = dataclasses.replace(
            plan, dep_info=forge_distance(plan.dep_info)
        )
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizerError):
            run_vector(forged_plan, make_buffers(kern))
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        run_vector(forged_plan, make_buffers(kern))  # opt-out: no check
