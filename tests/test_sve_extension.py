"""Extension-target (ARMv9 SVE) tests: capabilities, lowering, study."""

import numpy as np

from repro.codegen import lower_vector
from repro.costmodel import RatedSpeedupModel, predict_all
from repro.experiments import DatasetSpec, build_dataset
from repro.fitting import NonNegativeLeastSquares
from repro.ir import DType
from repro.targets import ARMV9_SVE, get_target
from repro.targets.classes import IClass
from repro.tsvc import get_kernel
from repro.validation import pearson
from repro.vectorize import vectorize_loop

from tests.helpers import SMALL, build


def test_registry_and_aliases():
    assert get_target("sve") is ARMV9_SVE
    assert get_target("armv9") is ARMV9_SVE
    assert ARMV9_SVE.vector_bits == 256


def test_capability_profile():
    assert ARMV9_SVE.has_gather
    assert ARMV9_SVE.has_scatter
    assert ARMV9_SVE.has_masked_mem


def test_gather_lowered_as_hardware_instruction():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[i] = b[ip[i]] + 1.0

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV9_SVE)
    counts = lower_vector(plan, ARMV9_SVE).counts()
    assert counts[IClass.GATHER] == 1
    assert IClass.INSERT not in counts


def test_scatter_lowered_as_hardware_instruction():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[ip[i]] = b[i]

    kern = build("t", body)
    counts = lower_vector(vectorize_loop(kern, ARMV9_SVE), ARMV9_SVE).counts()
    assert counts[IClass.SCATTER] == 1
    assert IClass.EXTRACT not in counts


def test_masked_store_is_native():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        with k.if_(b[i] > 0.0):
            a[i] = b[i]

    kern = build("t", body)
    counts = lower_vector(vectorize_loop(kern, ARMV9_SVE), ARMV9_SVE).counts()
    assert counts[IClass.MASKSTORE] == 1
    assert IClass.BLEND not in counts  # no load+blend+store dance


def test_vf8_for_f32():
    kern = get_kernel("s000", SMALL)
    plan = vectorize_loop(kern, ARMV9_SVE)
    assert plan.vf == 8


def test_functional_equivalence_on_sve():
    from repro.sim.executor import make_buffers, run_scalar, run_vector
    from tests.helpers import assert_buffers_close, copy_buffers

    for name in ("s000", "vag", "s491", "s271", "s314"):
        kern = get_kernel(name, SMALL)
        plan = vectorize_loop(kern, ARMV9_SVE)
        if hasattr(plan, "reason"):
            continue
        b1 = make_buffers(kern, seed=3)
        b2 = copy_buffers(b1)
        run_scalar(kern, b1)
        run_vector(plan, b2)
        assert_buffers_close(b1, b2, context=f"sve:{name}")


def test_sve_study_fits():
    ds = build_dataset(DatasetSpec("armv9-sve", "llv"))
    assert len(ds.samples) >= 80
    model = RatedSpeedupModel(NonNegativeLeastSquares()).fit(ds.samples)
    r = pearson(predict_all(model, ds.samples), ds.measured)
    assert r > 0.5


def test_cross_target_transfer_loses_to_native():
    from repro.experiments import ARM_LLV

    neon_ds = build_dataset(ARM_LLV)
    sve_ds = build_dataset(DatasetSpec("armv9-sve", "llv"))
    native = RatedSpeedupModel(NonNegativeLeastSquares()).fit(sve_ds.samples)
    transferred = RatedSpeedupModel(NonNegativeLeastSquares()).fit(neon_ds.samples)
    r_native = pearson(predict_all(native, sve_ds.samples), sve_ds.measured)
    r_transfer = pearson(predict_all(transferred, sve_ds.samples), sve_ds.measured)
    assert r_native > r_transfer  # cost models are per-target artifacts


def test_wider_lanes_more_memory_bound():
    from repro.experiments import ARM_LLV

    neon_ds = build_dataset(ARM_LLV)
    sve_ds = build_dataset(DatasetSpec("armv9-sve", "llv"))
    neon_frac = np.mean([s.vector_bound == "memory" for s in neon_ds.samples])
    sve_frac = np.mean([s.vector_bound == "memory" for s in sve_ds.samples])
    assert sve_frac > neon_frac
