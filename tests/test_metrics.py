"""Metric and decision-policy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.validation import (
    always_cycles,
    confusion,
    evaluate,
    mae,
    never_cycles,
    oracle_cycles,
    pearson,
    policy_cycles,
    rmse,
    spearman,
)

from tests.test_costmodel import mk_sample


class TestCorrelation:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)
        assert spearman(x, x**3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0
        assert spearman(np.arange(5.0), np.ones(5)) == 0.0

    def test_too_few_points(self):
        assert pearson(np.array([1.0]), np.array([2.0])) == 0.0


class TestErrors:
    def test_rmse_mae(self):
        p = np.array([1.0, 2.0, 3.0])
        m = np.array([1.0, 4.0, 3.0])
        assert rmse(p, m) == pytest.approx(np.sqrt(4 / 3))
        assert mae(p, m) == pytest.approx(2 / 3)

    def test_zero_on_exact(self):
        x = np.arange(10.0)
        assert rmse(x, x) == 0.0


class TestConfusion:
    def test_quadrants(self):
        predicted = np.array([2.0, 2.0, 0.5, 0.5])
        measured = np.array([2.0, 0.5, 2.0, 0.5])
        c = confusion(predicted, measured)
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 1, 1, 1)
        assert c.accuracy == 0.5
        assert c.false_predictions == 2

    def test_counts_partition(self):
        rng = np.random.default_rng(0)
        p, m = rng.uniform(0, 4, 50), rng.uniform(0, 4, 50)
        c = confusion(p, m)
        assert c.total == 50

    def test_custom_threshold(self):
        p = np.array([1.5, 1.5])
        m = np.array([1.5, 1.5])
        c = confusion(p, m, threshold=2.0)
        assert c.tn == 2

    def test_evaluate_report(self):
        p = np.array([1.0, 2.0, 3.0])
        r = evaluate("m", p, p)
        assert r.pearson == pytest.approx(1.0)
        assert r.confusion.false_predictions == 0
        row = r.row()
        assert row["model"] == "m"
        assert set(row) >= {"pearson", "spearman", "rmse", "FP", "FN"}


class TestPolicies:
    def _samples(self):
        # kernel A: vectorization wins (1.0 -> 0.5/elem)
        # kernel B: vectorization loses (1.0 -> 2.0/elem)
        a = mk_sample(name="A", scpi=1.0, vcpi=2.0, vf=4)   # vec 0.5/elem
        b = mk_sample(name="B", scpi=1.0, vcpi=8.0, vf=4)   # vec 2.0/elem
        return [a, b]

    def test_reference_policies(self):
        samples = self._samples()
        assert never_cycles(samples).cycles == pytest.approx(2.0)
        assert always_cycles(samples).cycles == pytest.approx(2.5)
        oracle = oracle_cycles(samples)
        assert oracle.cycles == pytest.approx(1.5)
        assert oracle.vectorized == 1

    def test_model_policy(self):
        samples = self._samples()
        perfect = policy_cycles(samples, np.array([2.0, 0.5]))
        assert perfect.cycles == pytest.approx(oracle_cycles(samples).cycles)
        inverted = policy_cycles(samples, np.array([0.5, 2.0]))
        assert inverted.cycles == pytest.approx(3.0)

    def test_nan_predictions_fall_back_to_scalar(self):
        samples = self._samples()
        p = policy_cycles(samples, np.array([np.nan, np.nan]))
        assert p.cycles == pytest.approx(never_cycles(samples).cycles)

    def test_oracle_never_worse(self):
        rng = np.random.default_rng(3)
        samples = [
            mk_sample(name=f"s{i}", scpi=float(rng.uniform(1, 4)),
                      vcpi=float(rng.uniform(1, 16)), vf=4)
            for i in range(20)
        ]
        oracle = oracle_cycles(samples).cycles
        assert oracle <= never_cycles(samples).cycles + 1e-9
        assert oracle <= always_cycles(samples).cycles + 1e-9
        preds = rng.uniform(0, 4, 20)
        assert oracle <= policy_cycles(samples, preds).cycles + 1e-9


# -- property-based ------------------------------------------------------------

finite = st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False)


@given(
    arrays(np.float64, st.integers(3, 40), elements=finite),
)
@settings(max_examples=50, deadline=None)
def test_pearson_bounded(x):
    rng = np.random.default_rng(0)
    y = rng.uniform(0.01, 100.0, size=len(x))
    r = pearson(x, y)
    assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


@given(arrays(np.float64, st.integers(2, 40), elements=finite))
@settings(max_examples=50, deadline=None)
def test_confusion_partitions(x):
    rng = np.random.default_rng(1)
    y = rng.uniform(0.01, 100.0, size=len(x))
    c = confusion(x, y)
    assert c.tp + c.fp + c.tn + c.fn == len(x)
    assert 0.0 <= c.accuracy <= 1.0


@given(arrays(np.float64, st.integers(2, 30), elements=finite))
@settings(max_examples=50, deadline=None)
def test_rmse_at_least_mae(x):
    rng = np.random.default_rng(2)
    y = rng.uniform(0.01, 100.0, size=len(x))
    assert rmse(x, y) >= mae(x, y) - 1e-12
