"""Parallel dataset construction (repro.pipeline.build)."""

import numpy as np
import pytest

from repro.experiments import DatasetSpec
from repro.pipeline import MeasurementCache, measure_suite, resolve_workers

SPEC = DatasetSpec("armv8-neon", "llv")


def no_cache(tmp_path):
    return MeasurementCache(root=tmp_path, enabled=False)


def assert_samples_identical(left, right):
    assert [s.name for s in left] == [s.name for s in right]
    for a, b in zip(left, right):
        assert a.vf == b.vf
        assert a.category == b.category
        assert a.target == b.target
        assert a.vector_bound == b.vector_bound
        # Bit-identity, not approximate equality: the per-kernel RNG
        # seeding makes measurement order irrelevant.
        assert a.measured_speedup == b.measured_speedup
        assert a.measured_scalar_cpi == b.measured_scalar_cpi
        assert a.measured_vector_cpi == b.measured_vector_cpi
        assert np.array_equal(a.scalar_features, b.scalar_features)
        assert np.array_equal(a.vector_features, b.vector_features)
        assert np.array_equal(a.lowered_features, b.lowered_features)


def test_parallel_equals_serial_bit_identical(tmp_path):
    """The suite-wide determinism property behind the whole pipeline."""
    serial, serial_fail = measure_suite(SPEC, workers=1, cache=no_cache(tmp_path))
    parallel, parallel_fail = measure_suite(SPEC, workers=2, cache=no_cache(tmp_path))
    assert serial_fail == parallel_fail
    assert_samples_identical(serial, parallel)


def test_cached_build_equals_fresh_build(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fresh, fresh_fail = measure_suite(SPEC, workers=1, cache=cache)
    cached, cached_fail = measure_suite(SPEC, workers=1, cache=cache)
    assert fresh_fail == cached_fail
    assert_samples_identical(fresh, cached)


def test_results_ordered_by_suite_registration(tmp_path):
    from repro.tsvc import kernel_names

    samples, failures = measure_suite(SPEC, workers=2, cache=no_cache(tmp_path))
    order = {name: i for i, name in enumerate(kernel_names())}
    sample_pos = [order[s.name] for s in samples]
    failure_pos = [order[n] for n, _ in failures]
    assert sample_pos == sorted(sample_pos)
    assert failure_pos == sorted(failure_pos)
    assert len(samples) + len(failures) == len(order)


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(4) == 4
    assert resolve_workers(0) == 1  # floor at serial
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert resolve_workers() == 3
    assert resolve_workers(2) == 2  # explicit beats env


@pytest.mark.parametrize("bad", ["not-a-number", "0", "-2", "2.5"])
def test_resolve_workers_invalid_env_raises(monkeypatch, bad):
    monkeypatch.setenv("REPRO_WORKERS", bad)
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers()
    # An explicit count never consults the env var.
    assert resolve_workers(2) == 2


def test_workers_capped_at_pending_kernels(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(16, pending=3) == 3
    assert resolve_workers(2, pending=100) == 2
    assert resolve_workers(16, pending=0) == 1


def test_spec_workers_flow_through(tmp_path):
    spec = DatasetSpec("armv8-neon", "llv", workers=2)
    samples, _ = measure_suite(spec, cache=no_cache(tmp_path))
    baseline, _ = measure_suite(SPEC, workers=1, cache=no_cache(tmp_path))
    assert_samples_identical(samples, baseline)


def test_unknown_target_raises_before_any_work(tmp_path):
    with pytest.raises(KeyError):
        measure_suite(
            DatasetSpec("not-a-target", "llv"), cache=no_cache(tmp_path)
        )
