"""Corpus-scale machinery tests: batched native translation units
(:func:`repro.sim.prebuild_native`), the sharded sweep orchestrator
(:mod:`repro.pipeline.corpus`), and the E13 plumbing on top.

The load-bearing property throughout is *bit-identity*: batching,
sharding, streaming, and resumption are allowed to change wall-clock
and peak memory, never a single measured float.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.experiments import ARM_LLV
from repro.experiments.corpus import corpus_kernel_names, e13_sizes
from repro.gen import clear_gen_memo, corpus_names, generate_kernel
from repro.pipeline import (
    MeasurementCache,
    estimate_kernel_work,
    measure_corpus,
    partition_names,
)
from repro.pipeline.faultinject import _samples_equal
from repro.sim import native, prebuild_native
from repro.tsvc import kernel_names

HAVE_CC = native.find_toolchain() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no usable C toolchain")


def nocache() -> MeasurementCache:
    return MeasurementCache(root="/nonexistent", enabled=False)


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_gen_memo()
    native.reset_native_state()
    yield
    clear_gen_memo()
    native.reset_native_state()


class TestPartition:
    def test_concatenation_preserves_order(self):
        names = [f"k{i}" for i in range(17)]
        for shards in (1, 2, 3, 5, 17, 40):
            blocks = partition_names(names, shards)
            assert [n for b in blocks for n in b] == names

    def test_near_even(self):
        blocks = partition_names([f"k{i}" for i in range(17)], 5)
        sizes = [len(b) for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_degenerate_inputs(self):
        assert partition_names([], 4) == []
        assert partition_names(["a"], 4) == [["a"]]
        assert partition_names(["a", "b"], 0) == [["a", "b"]]


class TestCorpusNames:
    def test_suite_first_then_generated(self):
        suite = sorted(kernel_names())
        names = corpus_kernel_names(len(suite) + 10)
        assert names[: len(suite)] == suite
        assert names[len(suite) :] == corpus_names(10, seed=0)

    def test_truncates_small_sizes(self):
        names = corpus_kernel_names(5)
        assert names == sorted(kernel_names())[:5]

    def test_sizes_are_nested(self):
        small, large = corpus_kernel_names(170), corpus_kernel_names(200)
        assert large[: len(small)] == small

    def test_e13_sizes_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_E13_SIZES", "40, 20 30")
        assert e13_sizes() == (20, 30, 40)
        monkeypatch.setenv("REPRO_E13_SIZES", "")
        assert len(e13_sizes()) >= 4  # the default learning curve


class TestShardedBitIdentity:
    NAMES = sorted(kernel_names())[:8] + corpus_names(10, seed=3)

    def _serial(self):
        return measure_corpus(
            self.NAMES, ARM_LLV, shards=1, workers=1,
            supervise=False, cache=nocache(),
        )

    def test_sharded_equals_serial(self):
        serial = self._serial()
        sharded = measure_corpus(
            self.NAMES, ARM_LLV, shards=4, workers=1,
            supervise=False, cache=nocache(),
        )
        assert sharded.shards == 4
        assert _samples_equal(serial.samples, sharded.samples)
        assert serial.failures == sharded.failures
        assert not sharded.quarantined_names

    def test_streamed_merge_equals_in_memory(self, tmp_path):
        serial = self._serial()
        streamed = measure_corpus(
            self.NAMES, ARM_LLV, shards=3, workers=1,
            supervise=False, cache=nocache(), stream_dir=str(tmp_path),
        )
        assert _samples_equal(serial.samples, streamed.samples)
        files = sorted(os.listdir(tmp_path))
        assert files == [f"shard-{k:04d}-of-0003.pkl" for k in range(3)]
        with open(tmp_path / files[0], "rb") as fh:
            samples, _ = pickle.load(fh)
        assert [s.name for s in samples] == [
            s.name for s in serial.samples[: len(samples)]
        ]

    def test_per_shard_stats_are_collected(self):
        res = measure_corpus(
            self.NAMES, ARM_LLV, shards=2, workers=1,
            supervise=False, cache=nocache(),
        )
        assert len(res.shard_stats) == 2


class TestWorkEstimate:
    def test_batching_amortizes_native_build_cost(self, monkeypatch):
        from repro.gen import gen_name

        # Guarded kernel: only guard-probability estimation executes
        # the kernel, so only guarded kernels carry a build term.
        kern = generate_kernel(gen_name(0, 0, "control-flow"))
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "1")
        solo = estimate_kernel_work(kern)
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "24")
        batched = estimate_kernel_work(kern)
        if not native.native_enabled() or not HAVE_CC:
            pytest.skip("native tier disabled; estimate has no build term")
        assert batched < solo
        # The build term shrinks ~linearly with the batch size.
        assert solo - batched > 1000


@needs_cc
class TestPrebuildNative:
    def kernels(self, n=6, seed=11):
        return [generate_kernel(nm) for nm in corpus_names(n, seed=seed)]

    def test_one_so_per_batch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "8")
        native.reset_native_state()
        statuses = prebuild_native(self.kernels())
        assert statuses
        assert all(
            v in ("exact", "tolerance") or v.startswith("unsupported")
            for v in statuses.values()
        ), statuses
        sos = [f for f in os.listdir(tmp_path) if f.endswith(".so")]
        assert len(sos) == 1 and sos[0].startswith("batch-")

    def test_second_call_is_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "8")
        native.reset_native_state()
        kerns = self.kernels()
        prebuild_native(kerns)
        native.reset_native_state()
        again = prebuild_native(kerns)
        assert set(again.values()) == {"cached"}

    def test_batch_members_run_bit_identical_to_interpreter(
        self, tmp_path, monkeypatch
    ):
        from repro.sim import (
            bit_identical,
            initial_scalars,
            make_buffers,
            run_scalar,
            run_scalar_interpreted,
        )

        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "8")
        native.reset_native_state()
        kerns = self.kernels(4, seed=13)
        prebuild_native(kerns)
        for k in kerns:
            bufs_n = make_buffers(k, seed=2)
            bufs_i = make_buffers(k, seed=2)
            res_n = run_scalar(k, bufs_n, initial_scalars(k))
            res_i = run_scalar_interpreted(k, bufs_i, initial_scalars(k))
            assert bit_identical(res_n, bufs_n, res_i, bufs_i), k.name

    def test_batch_disabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_BATCH", "1")
        native.reset_native_state()
        assert prebuild_native(self.kernels(3)) == {}


class TestChaosCorpusGate:
    def test_faulted_sharded_corpus_converges(self):
        from repro.pipeline import RetryPolicy, parse_faults

        names = sorted(kernel_names())[:4] + corpus_names(8, seed=3)
        clean = measure_corpus(
            names, ARM_LLV, shards=1, workers=1,
            supervise=False, cache=nocache(),
        )
        chaotic = measure_corpus(
            names, ARM_LLV, shards=3, workers=2, cache=nocache(),
            faults=parse_faults("crash:0.1,flaky_exc:0.15", seed=5),
            retry=RetryPolicy(max_attempts=6, base_delay=0.01),
        )
        assert _samples_equal(clean.samples, chaotic.samples)
        assert clean.failures == chaotic.failures
        assert not chaotic.quarantined_names
