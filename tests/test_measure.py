"""Measurement harness tests."""

import pytest

from repro.sim.measure import (
    apply_jitter,
    estimate_guard_probs,
    measure_kernel,
)
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.tsvc import get_kernel
from repro.vectorize.plan import VectorizationFailure

from tests.helpers import SMALL, build

import numpy as np


def test_measure_simple_kernel():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = b[i] + 1.0

    m = measure_kernel(build("t", body), ARMV8_NEON)
    assert m.speedup > 1.0
    assert m.vf == 4
    assert m.scalar_cycles > m.vector_cycles > 0


def test_failure_propagates():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = a[i - 1] + b[i]

    m = measure_kernel(build("t", body), ARMV8_NEON)
    assert isinstance(m, VectorizationFailure)


def test_deterministic_without_jitter():
    kern = get_kernel("s000", SMALL)
    m1 = measure_kernel(kern, ARMV8_NEON, jitter=0.0)
    m2 = measure_kernel(kern, ARMV8_NEON, jitter=0.0)
    assert m1.speedup == m2.speedup


def test_jitter_deterministic_per_seed():
    kern = get_kernel("s000", SMALL)
    m1 = measure_kernel(kern, ARMV8_NEON, jitter=0.05, seed=3)
    m2 = measure_kernel(kern, ARMV8_NEON, jitter=0.05, seed=3)
    m3 = measure_kernel(kern, ARMV8_NEON, jitter=0.05, seed=4)
    assert m1.speedup == m2.speedup
    assert m1.speedup != m3.speedup


def test_jitter_bounded():
    rng = np.random.default_rng(0)
    for _ in range(200):
        v = apply_jitter(100.0, rng, 0.02)
        assert 100 * (1 - 0.06) <= v <= 100 * (1 + 0.06)


def test_zero_jitter_identity():
    rng = np.random.default_rng(0)
    assert apply_jitter(42.0, rng, 0.0) == 42.0


def test_guard_probs_estimated_for_guarded_kernel():
    probs = estimate_guard_probs(get_kernel("s271", SMALL))
    assert 0 in probs
    assert 0.2 < probs[0] < 0.8


def test_guard_probs_empty_without_guards():
    assert estimate_guard_probs(get_kernel("s000", SMALL)) == {}


def test_guard_probs_memoized_per_kernel_and_seed(monkeypatch):
    """Measuring several plans of one kernel runs the estimator once."""
    import repro.sim.measure as measure_mod

    measure_mod.clear_guard_prob_memo()
    kern = get_kernel("s271", SMALL)
    runs = []
    real_run = measure_mod.run_scalar

    def counting_run(*args, **kwargs):
        runs.append(1)
        return real_run(*args, **kwargs)

    monkeypatch.setattr(measure_mod, "run_scalar", counting_run)
    first = estimate_guard_probs(kern, seed=0)
    second = estimate_guard_probs(kern, seed=0)
    assert first == second
    assert len(runs) == 1  # second call memoized
    estimate_guard_probs(kern, seed=1)
    assert len(runs) == 2  # different seed recomputes
    # Callers get independent copies, never a shared dict.
    first[0] = -1.0
    assert estimate_guard_probs(kern, seed=0)[0] != -1.0
    assert len(runs) == 2


def test_guard_memo_distinguishes_kernel_objects():
    """Same-named kernels at different dims must not share probabilities."""
    import repro.sim.measure as measure_mod

    measure_mod.clear_guard_prob_memo()
    from repro.tsvc import Dims

    a = get_kernel("s271", SMALL)
    b = get_kernel("s271", Dims(n=480, n2=16))
    assert a is not b
    pa = estimate_guard_probs(a)
    pb = estimate_guard_probs(b)
    assert set(pa) == set(pb)  # same guard structure, separate entries


def test_remainder_charged_to_vector_time():
    def body(k, trip):
        a, b = k.arrays("a", "b")
        i = k.loop(trip)
        a[i] = b[i] + 1.0

    def mk(trip):
        from repro.ir import KernelBuilder

        kb = KernelBuilder("t")
        body(kb, trip)
        return kb.build()

    exact = measure_kernel(mk(256), ARMV8_NEON)
    ragged = measure_kernel(mk(259), ARMV8_NEON)
    # 259 = 64 vector iterations + 3 scalar tail iterations.
    assert ragged.vector_cycles > exact.vector_cycles


def test_slp_vectorizer_selectable():
    kern = get_kernel("s000", SMALL)
    m = measure_kernel(kern, X86_AVX2, vectorizer="slp")
    assert m.plan.kind == "slp"
    with pytest.raises(ValueError):
        measure_kernel(kern, X86_AVX2, vectorizer="polly")


def test_explicit_vf():
    kern = get_kernel("s000", SMALL)
    m = measure_kernel(kern, ARMV8_NEON, vf=2)
    assert m.vf == 2


def test_ir_stream_attached():
    kern = get_kernel("vag", SMALL)  # gather kernel
    m = measure_kernel(kern, ARMV8_NEON)
    from repro.costmodel import class_count, feature_vector
    from repro.targets.classes import IClass

    ir_feats = feature_vector(m.ir_vector_stream)
    hw_feats = feature_vector(m.vector_stream)
    assert class_count(ir_feats, IClass.GATHER) == 1
    assert class_count(hw_feats, IClass.GATHER) == 0  # NEON scalarizes
    assert class_count(hw_feats, IClass.INSERT) == 4
