"""Scalar classification tests: params, privates, reductions, recurrences."""

from repro.analysis.reduction import (
    REDUCTION_IDENTITY,
    ScalarClass,
    classify_scalars,
    recurrences_of,
    reductions_of,
)
from repro.ir import BinOpKind, select

from tests.helpers import build


def classify(body_fn):
    return classify_scalars(build("t", body_fn))


def test_param_never_written():
    def body(k):
        a = k.array("a")
        s = k.param("s", value=2.0)
        i = k.loop(16)
        a[i] = a[i] * s

    info = classify(body)
    assert info["s"].klass is ScalarClass.PARAM


def test_private_defined_before_use():
    def body(k):
        a, b = k.arrays("a", "b")
        t = k.scalar("t")
        i = k.loop(16)
        t.set(a[i] + b[i])
        a[i] = t * t

    assert classify(body)["t"].klass is ScalarClass.PRIVATE


def test_private_may_be_reassigned_later():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        t = k.scalar("t")
        i = k.loop(16)
        t.set(a[i] + b[i])
        a[i] = t + c[i]
        t.set(c[i] * 2.0)
        c[i] = t.ref

    assert classify(body)["t"].klass is ScalarClass.PRIVATE


def test_sum_reduction():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(16)
        s.set(s + a[i])

    info = classify(body)["s"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.ADD
    assert not info.guarded


def test_product_reduction_reversed_operands():
    def body(k):
        a = k.array("a")
        p = k.scalar("p", init=1.0)
        i = k.loop(16)
        p.set(a[i] * p)

    info = classify(body)["p"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.MUL


def test_guarded_sum_reduction():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(16)
        with k.if_(a[i] > 0.0):
            s.set(s + a[i])

    info = classify(body)["s"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.guarded


def test_conditional_max_reduction():
    def body(k):
        a = k.array("a")
        x = k.scalar("x", init=-1e30)
        i = k.loop(16)
        with k.if_(a[i] > x):
            x.set(a[i])

    info = classify(body)["x"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.MAX
    assert info.guarded


def test_conditional_min_reduction_mirrored_compare():
    def body(k):
        a = k.array("a")
        x = k.scalar("x", init=1e30)
        i = k.loop(16)
        with k.if_(x > a[i]):
            x.set(a[i])

    info = classify(body)["x"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.MIN


def test_select_max_reduction():
    def body(k):
        a = k.array("a")
        x = k.scalar("x", init=-1e30)
        i = k.loop(16)
        x.set(select(a[i] > x, a[i], x.ref))

    info = classify(body)["x"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.MAX


def test_select_max_with_swapped_arms():
    def body(k):
        a = k.array("a")
        x = k.scalar("x", init=-1e30)
        i = k.loop(16)
        # candidate on the false arm: takes a[i] when NOT(a[i] <= x).
        x.set(select(a[i] <= x, x.ref, a[i]))

    info = classify(body)["x"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.MAX


def test_chained_multi_update_reduction():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(16)
        s.set(s + a[i])
        s.set(s + b[i])

    info = classify(body)["s"]
    assert info.klass is ScalarClass.REDUCTION
    assert info.op is BinOpKind.ADD


def test_mixed_op_updates_are_recurrence():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(16)
        s.set(s + a[i])
        s.set(s * b[i])

    assert classify(body)["s"].klass is ScalarClass.RECURRENCE


def test_read_elsewhere_is_recurrence():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(16)
        s.set(s + a[i])
        b[i] = s.ref  # prefix sum

    assert classify(body)["s"].klass is ScalarClass.RECURRENCE


def test_read_before_write_is_recurrence():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(16)
        a[i] = s * 2.0
        s.set(b[i])

    assert classify(body)["s"].klass is ScalarClass.RECURRENCE


def test_guarded_first_write_is_not_private():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        i = k.loop(16)
        with k.if_(a[i] > 0.0):
            s.set(a[i])
        b[i] = s * 2.0

    assert classify(body)["s"].klass is ScalarClass.RECURRENCE


def test_nonassociative_update_is_recurrence():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(16)
        s.set(s * 0.5 + a[i])

    assert classify(body)["s"].klass is ScalarClass.RECURRENCE


def test_helpers():
    def body(k):
        a, b = k.arrays("a", "b")
        s = k.scalar("s")
        t = k.scalar("t")
        i = k.loop(16)
        s.set(s + a[i])
        a[i] = t * 1.0
        t.set(b[i])

    kern = build("t", body)
    assert [r.name for r in reductions_of(kern)] == ["s"]
    assert [r.name for r in recurrences_of(kern)] == ["t"]


def test_identity_table_complete():
    for op in (BinOpKind.ADD, BinOpKind.MUL, BinOpKind.MIN, BinOpKind.MAX):
        assert op in REDUCTION_IDENTITY
    assert REDUCTION_IDENTITY[BinOpKind.ADD] == 0.0
    assert REDUCTION_IDENTITY[BinOpKind.MUL] == 1.0
