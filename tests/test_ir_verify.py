"""Verifier tests: hand-built malformed kernels must be rejected."""

import pytest

from repro.ir.expr import Affine, Const, Indirect, IterValue, Load, ScalarRef
from repro.ir.kernel import ArrayDecl, Loop, LoopKernel, ScalarDecl
from repro.ir.stmt import ArrayStore, IfBlock, ScalarAssign
from repro.ir.types import DType
from repro.ir.verify import VerificationError, verify_kernel


def make_kernel(body, arrays=None, scalars=None, depth=1):
    arrays = arrays if arrays is not None else {
        "a": ArrayDecl("a", DType.F32, (100,))
    }
    return LoopKernel(
        name="t",
        loops=tuple(Loop(10) for _ in range(depth)),
        arrays=arrays,
        scalars=scalars or {},
        body=tuple(body),
        category="test",
    )


IDX = (Affine((1,), 0),)


def test_valid_kernel_passes():
    verify_kernel(make_kernel([ArrayStore("a", IDX, Const(1.0, DType.F32))]))


def test_store_to_undeclared_array():
    with pytest.raises(VerificationError, match="undeclared array"):
        verify_kernel(make_kernel([ArrayStore("zz", IDX, Const(1.0, DType.F32))]))


def test_load_from_undeclared_array():
    body = [ArrayStore("a", IDX, Load("zz", IDX, DType.F32))]
    with pytest.raises(VerificationError, match="undeclared array"):
        verify_kernel(make_kernel(body))


def test_dim_mismatch():
    bad = (Affine((1,), 0), Affine((1,), 0))
    with pytest.raises(VerificationError, match="subscripted"):
        verify_kernel(make_kernel([ArrayStore("a", bad, Const(1.0, DType.F32))]))


def test_affine_coeff_arity_mismatch():
    bad = (Affine((1, 0), 0),)  # depth-2 coeffs in a depth-1 kernel
    with pytest.raises(VerificationError, match="coeffs"):
        verify_kernel(make_kernel([ArrayStore("a", bad, Const(1.0, DType.F32))]))


def test_indirect_through_float_array():
    arrays = {
        "a": ArrayDecl("a", DType.F32, (100,)),
        "f": ArrayDecl("f", DType.F32, (100,)),
    }
    bad = (Indirect("f", Affine((1,), 0)),)
    with pytest.raises(VerificationError, match="must be integer"):
        verify_kernel(
            make_kernel([ArrayStore("a", bad, Const(1.0, DType.F32))], arrays=arrays)
        )


def test_assign_to_undeclared_scalar():
    with pytest.raises(VerificationError, match="undeclared scalar"):
        verify_kernel(make_kernel([ScalarAssign("s", Const(1.0, DType.F32))]))


def test_scalar_ref_dtype_mismatch():
    scalars = {"s": ScalarDecl("s", DType.F64)}
    body = [ArrayStore("a", IDX, ScalarRef("s", DType.F32))]
    with pytest.raises(VerificationError, match="referenced as"):
        verify_kernel(make_kernel(body, scalars=scalars))


def test_load_dtype_mismatch():
    body = [ArrayStore("a", IDX, Load("a", IDX, DType.F64))]
    with pytest.raises(VerificationError, match="typed"):
        verify_kernel(make_kernel(body))


def test_if_condition_must_be_bool():
    body = [IfBlock(Const(1.0, DType.F32), (ArrayStore("a", IDX, Const(1.0, DType.F32)),))]
    with pytest.raises(VerificationError, match="bool"):
        verify_kernel(make_kernel(body))


def test_iter_value_level_out_of_range():
    body = [
        ArrayStore(
            "a",
            IDX,
            Load("a", IDX, DType.F32),
        ),
        ScalarAssign("s", IterValue(1, DType.I32)),
    ]
    scalars = {"s": ScalarDecl("s", DType.I32)}
    with pytest.raises(VerificationError, match="out of range"):
        verify_kernel(make_kernel(body, scalars=scalars, depth=1))


def test_bool_store_into_float_array():
    from repro.ir.expr import CmpKind, Compare

    cond = Compare(CmpKind.GT, Const(1.0, DType.F32), Const(0.0, DType.F32))
    with pytest.raises(VerificationError, match="bool"):
        verify_kernel(make_kernel([ArrayStore("a", IDX, cond)]))


def test_error_message_carries_kernel_name():
    with pytest.raises(VerificationError, match=r"^t: store to undeclared"):
        verify_kernel(make_kernel([ArrayStore("zz", IDX, Const(1.0, DType.F32))]))


def test_error_kernel_name_attribute():
    try:
        verify_kernel(make_kernel([ArrayStore("zz", IDX, Const(1.0, DType.F32))]))
    except VerificationError as err:
        assert err.kernel_name == "t"
    else:
        raise AssertionError("expected VerificationError")


def test_parser_boundary_reverifies():
    from repro.frontend import parse_kernel

    kern = parse_kernel(
        """
        kernel pb {
          f32 a[64], b[64];
          for (i = 0; i < 64; i++) {
            a[i] = b[i] + 1.0;
          }
        }
        """
    )
    verify_kernel(kern)  # parse_kernel returns an already-verified kernel
