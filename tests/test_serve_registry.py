"""Model registry: atomic installs, gate + rollback, corruption healing."""

import json

import numpy as np
import pytest

from repro.costmodel.speedup import SpeedupModel
from repro.fitting.nnls import NonNegativeLeastSquares
from repro.serve import (
    ModelRegistry,
    RegistryError,
    entry_from_model,
    entry_version,
    validate_entry,
)
from repro.serve.registry import REGISTRY_SCHEMA

from tests.test_costmodel import feat, mk_sample


def toy_samples(n=12, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        counts = {
            k: float(rng.integers(1, 5))
            for k in ("load", "add", "mul", "store")
        }
        out.append(
            mk_sample(
                name=f"s{i:03d}",
                scalar=feat(load=2, add=1, store=1),
                vector=feat(**counts),
                speedup=float(rng.uniform(0.5, 3.5)),
            )
        )
    return out


@pytest.fixture
def entry():
    samples = toy_samples()
    model = SpeedupModel(NonNegativeLeastSquares()).fit(samples)
    return entry_from_model(
        model, samples, target="armv8-neon", vectorizer="llv"
    )


def test_publish_and_current_roundtrip(tmp_path, entry):
    reg = ModelRegistry(tmp_path)
    published = reg.publish(entry)
    assert published.version == entry.version
    assert reg.current("armv8-neon", "llv").weights == entry.weights

    # Layout: entry + sha256 sidecar + CURRENT pointer, all installed.
    key_dir = tmp_path / "armv8-neon--llv"
    assert (key_dir / f"entry-{entry.version}.json").is_file()
    assert (key_dir / f"entry-{entry.version}.json.sha256").is_file()
    assert (key_dir / "CURRENT").read_text().strip() == entry.version

    # A fresh process (no in-memory state) loads the same weights.
    fresh = ModelRegistry(tmp_path)
    loaded = fresh.current("armv8-neon", "llv")
    assert loaded is not None
    assert loaded.weights == entry.weights
    assert loaded.version == entry.version


def test_entry_version_is_deterministic_provenance_hash(entry):
    again = entry_version(
        entry.dataset_fingerprint,
        entry.featurization,
        entry.target,
        entry.vectorizer,
        entry.regressor,
    )
    assert again == entry.version
    other = entry_version(
        "different-fingerprint",
        entry.featurization,
        entry.target,
        entry.vectorizer,
        entry.regressor,
    )
    assert other != entry.version


def test_validation_gate_rejects_poison_and_keeps_last_good(tmp_path, entry):
    from dataclasses import replace

    reg = ModelRegistry(tmp_path)
    reg.publish(entry)
    poisoned = replace(
        entry,
        version="poisoned0000",
        weights=tuple([float("nan")] + list(entry.weights[1:])),
    )
    with pytest.raises(RegistryError, match="validation gate"):
        reg.publish(poisoned)
    kept = reg.current("armv8-neon", "llv")
    assert kept.version == entry.version
    assert kept.weights == entry.weights
    assert reg.stats.rejected == 1
    # The poisoned candidate never reached disk either.
    assert not (tmp_path / "armv8-neon--llv" / "entry-poisoned0000.json").exists()


def test_validate_entry_failure_reasons(entry):
    from dataclasses import replace

    assert validate_entry(entry) == []
    bad_key = replace(entry, featurization="no-such-key")
    assert any("no-such-key" in r for r in validate_entry(bad_key))
    bad_width = replace(entry, weights=entry.weights[:-1])
    assert validate_entry(bad_width)
    bad_replay = replace(
        entry,
        validation_expected=tuple(
            v + 0.5 for v in entry.validation_expected
        ),
    )
    assert any("bit-exactly" in r for r in validate_entry(bad_replay))
    bad_fit = replace(
        entry,
        validation_measured=tuple(
            v + 100.0 for v in entry.validation_measured
        ),
    )
    assert any("RMSE" in r for r in validate_entry(bad_fit))


def test_corrupted_entry_heals_from_in_memory_last_good(tmp_path, entry):
    reg = ModelRegistry(tmp_path)
    reg.publish(entry)
    path = tmp_path / "armv8-neon--llv" / f"entry-{entry.version}.json"
    path.write_bytes(b"\x00garbage\x00" + path.read_bytes()[8:])

    out = reg.reload()
    assert out["armv8-neon--llv"] == entry.version
    healed = reg.current("armv8-neon", "llv")
    assert healed.weights == entry.weights
    assert reg.stats.heals == 1
    assert reg.stats.corrupt_evictions == 1
    # The heal re-installed valid bytes: a fresh process reads them.
    assert ModelRegistry(tmp_path).current("armv8-neon", "llv").weights == (
        entry.weights
    )


def test_corruption_without_memory_falls_back_to_other_version(tmp_path):
    reg = ModelRegistry(tmp_path)
    a_samples, b_samples = toy_samples(seed=1), toy_samples(seed=2)
    model_a = SpeedupModel(NonNegativeLeastSquares()).fit(a_samples)
    model_b = SpeedupModel(NonNegativeLeastSquares()).fit(b_samples)
    entry_a = entry_from_model(
        model_a, a_samples, target="armv8-neon", vectorizer="llv"
    )
    entry_b = entry_from_model(
        model_b, b_samples, target="armv8-neon", vectorizer="llv"
    )
    assert entry_a.version != entry_b.version
    reg.publish(entry_a)
    reg.publish(entry_b)
    assert reg.current("armv8-neon", "llv").version == entry_b.version

    # Corrupt the active entry, then load from a *fresh* process with
    # no in-memory last-good: the registry must fall back to A.
    path = tmp_path / "armv8-neon--llv" / f"entry-{entry_b.version}.json"
    path.write_text("not json at all")
    fresh = ModelRegistry(tmp_path)
    recovered = fresh.current("armv8-neon", "llv")
    assert recovered is not None
    assert recovered.version == entry_a.version
    assert recovered.weights == entry_a.weights


def test_foreign_schema_entry_is_evicted_not_misread(tmp_path, entry):
    reg = ModelRegistry(tmp_path)
    reg.publish(entry)
    path = tmp_path / "armv8-neon--llv" / f"entry-{entry.version}.json"
    data = json.loads(path.read_bytes())
    data["schema"] = REGISTRY_SCHEMA + 99
    blob = json.dumps(data, sort_keys=True).encode()
    path.write_bytes(blob)
    import hashlib

    path.with_suffix(".json.sha256").write_text(
        hashlib.sha256(blob).hexdigest()
    )
    fresh = ModelRegistry(tmp_path)
    assert fresh.current("armv8-neon", "llv") is None
    assert not path.exists()  # evicted


def test_empty_registry_serves_nothing(tmp_path):
    reg = ModelRegistry(tmp_path)
    assert reg.current("armv8-neon", "llv") is None
    assert reg.versions("armv8-neon", "llv") == []
    assert reg.reload() == {}


def test_versions_lists_metadata(tmp_path, entry):
    reg = ModelRegistry(tmp_path)
    reg.publish(entry)
    versions = reg.versions("armv8-neon", "llv")
    assert len(versions) == 1
    assert versions[0]["version"] == entry.version
    assert versions[0]["active"] is True
    assert versions[0]["weights"] == len(entry.weights)
    assert versions[0]["featurization"] == "counts"
