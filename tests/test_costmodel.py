"""Cost-model tests: featurization, baseline, fitted model family."""

import numpy as np
import pytest

from repro.codegen.minstr import StreamBuilder
from repro.costmodel import (
    EPS,
    FEATURE_NAMES,
    LLVMLikeCostModel,
    LinearCostModel,
    N_FEATURES,
    RatedSpeedupModel,
    Sample,
    SpeedupModel,
    class_count,
    describe,
    feature_vector,
    measured_speedups,
    predict_all,
    rated,
    sample_from_measurement,
)
from repro.costmodel.rated import rated_features, rated_with_vf
from repro.fitting import LeastSquares, NonNegativeLeastSquares
from repro.ir.types import DType
from repro.sim import measure_kernel
from repro.targets import ARMV8_NEON
from repro.targets.classes import FEATURE_ORDER, IClass

from tests.helpers import build


def feat(**kwargs) -> np.ndarray:
    v = np.zeros(N_FEATURES)
    for name, value in kwargs.items():
        v[FEATURE_ORDER.index(IClass[name.upper()])] = value
    return v


def mk_sample(
    name="k",
    vf=4,
    scalar=None,
    vector=None,
    speedup=2.0,
    scpi=1.0,
    vcpi=2.0,
) -> Sample:
    return Sample(
        name=name,
        category="test",
        target="armv8-neon",
        vf=vf,
        scalar_features=scalar if scalar is not None else feat(load=1, add=1, store=1),
        vector_features=vector if vector is not None else feat(load=1, add=1, store=1),
        measured_speedup=speedup,
        measured_scalar_cpi=scpi,
        measured_vector_cpi=vcpi,
    )


class TestFeaturize:
    def test_feature_vector_from_stream(self):
        b = StreamBuilder("t")
        b.emit(IClass.LOAD, DType.F32, lanes=4)
        b.emit(IClass.FMA, DType.F32, lanes=4)
        b.emit(IClass.STORE, DType.F32, lanes=4)
        b.stream.iters = 10
        v = feature_vector(b.stream)
        assert class_count(v, IClass.LOAD) == 1
        assert class_count(v, IClass.FMA) == 1
        assert v.sum() == 3

    def test_prologue_amortized(self):
        b = StreamBuilder("t")
        b.in_prologue()
        b.emit(IClass.BROADCAST, DType.F32, lanes=4)
        b.in_body()
        b.emit(IClass.ADD, DType.F32, lanes=4)
        b.stream.iters = 10
        v = feature_vector(b.stream)
        assert class_count(v, IClass.BROADCAST) == pytest.approx(0.1)
        v2 = feature_vector(b.stream, include_overhead=False)
        assert class_count(v2, IClass.BROADCAST) == 0

    def test_weights_respected(self):
        b = StreamBuilder("t")
        b.emit(IClass.STORE, DType.F32, weight=0.25)
        b.stream.iters = 1
        assert class_count(feature_vector(b.stream), IClass.STORE) == 0.25

    def test_rated_sums_to_one(self):
        v = feat(load=2, add=3, store=1)
        r = rated(v)
        assert r.sum() == pytest.approx(1.0)
        assert class_count(r, IClass.ADD) == pytest.approx(0.5)

    def test_rated_zero_vector_safe(self):
        r = rated(np.zeros(N_FEATURES))
        assert (r == 0).all()

    def test_rated_scale_invariant(self):
        v = feat(load=1, mul=2)
        np.testing.assert_allclose(rated(v), rated(7 * v))

    def test_describe_lists_nonzero(self):
        text = describe(feat(load=2, div=1))
        assert "load=2" in text and "div=1" in text and "store" not in text

    def test_feature_names_match_order(self):
        assert list(FEATURE_NAMES) == [c.value for c in FEATURE_ORDER]


class TestBaseline:
    def test_speedup_formula(self):
        model = LLVMLikeCostModel()
        s = mk_sample(
            scalar=feat(load=1, add=1, store=1),
            vector=feat(load=1, add=1, store=1),
            vf=4,
        )
        # Same static cost both sides -> predicted speedup = VF.
        assert model.predict_speedup(s) == pytest.approx(4.0)

    def test_expensive_vector_ops_lower_prediction(self):
        model = LLVMLikeCostModel()
        cheap = mk_sample(vector=feat(load=1, add=1, store=1))
        pricey = mk_sample(vector=feat(gather=2, add=1, store=1))
        assert model.predict_speedup(pricey) < model.predict_speedup(cheap)

    def test_fit_is_noop(self):
        model = LLVMLikeCostModel()
        assert model.fit([]) is model

    def test_never_divides_by_zero(self):
        model = LLVMLikeCostModel()
        s = mk_sample(vector=np.zeros(N_FEATURES))
        assert np.isfinite(model.predict_speedup(s))


class TestLinearCostModel:
    def test_implied_cost_construction(self):
        model = LinearCostModel(LeastSquares())
        s = mk_sample(speedup=2.0, vf=4)
        # static scalar cost = 3 (load+add+store), implied = 4*3/2 = 6.
        assert model.implied_vector_cost(s) == pytest.approx(6.0)

    def test_fit_recovers_consistent_costs(self):
        # Build samples whose implied costs ARE linear in features.
        w_true = {IClass.LOAD: 2.0, IClass.ADD: 1.0, IClass.STORE: 1.5}
        samples = []
        rng = np.random.default_rng(0)
        for i in range(30):
            counts = {k.value: float(rng.integers(1, 5)) for k in w_true}
            v = feat(**counts)
            cost = sum(w_true[k] * counts[k.value] for k in w_true)
            static_scalar = v.sum()  # all table costs are 1 here
            speedup = 4 * static_scalar / cost
            samples.append(mk_sample(name=f"s{i}", scalar=v, vector=v, speedup=speedup))
        model = LinearCostModel(NonNegativeLeastSquares()).fit(samples)
        for s in samples:
            assert model.predict_speedup(s) == pytest.approx(
                s.measured_speedup, rel=1e-6
            )

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearCostModel(LeastSquares()).predict_speedup(mk_sample())


class TestSpeedupModels:
    def _samples(self, n=40, seed=1):
        rng = np.random.default_rng(seed)
        out = []
        for i in range(n):
            v = feat(
                load=float(rng.integers(1, 4)),
                add=float(rng.integers(0, 4)),
                mul=float(rng.integers(0, 3)),
                store=1.0,
            )
            sc = feat(load=1, add=1, store=1)
            speedup = float(np.clip(1.0 + 0.5 * class_count(v, IClass.ADD), 0.1, 4))
            out.append(mk_sample(name=f"s{i}", scalar=sc, vector=v, speedup=speedup))
        return out

    def test_speedup_model_fits_linear_truth(self):
        samples = self._samples()
        m = SpeedupModel(LeastSquares()).fit(samples)
        preds = predict_all(m, samples)
        np.testing.assert_allclose(preds, measured_speedups(samples), atol=1e-6)

    def test_clip_to_vf(self):
        samples = self._samples()
        m = SpeedupModel(LeastSquares()).fit(samples)
        s = mk_sample(vector=feat(add=100), scalar=feat(load=1), vf=4)
        assert EPS <= m.predict_speedup(s) <= 4.0

    def test_rated_model_uses_fractions(self):
        s1 = mk_sample(vector=feat(load=1, add=1))
        s2 = mk_sample(vector=feat(load=10, add=10))
        np.testing.assert_allclose(rated_features(s1), rated_features(s2))

    def test_rated_with_vf_appends(self):
        s = mk_sample(vf=8)
        v = rated_with_vf(s)
        assert len(v) == N_FEATURES + 1
        assert v[-1] == 8.0

    def test_model_names(self):
        assert SpeedupModel(LeastSquares()).name == "speedup-L2"
        assert RatedSpeedupModel(NonNegativeLeastSquares()).name == "rated-NNLS"


class TestSampleFromMeasurement:
    def test_roundtrip(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(256)
            a[i] = b[i] + 1.0

        kern = build("t", body)
        m = measure_kernel(kern, ARMV8_NEON)
        s = sample_from_measurement(m)
        assert s.name == "t"
        assert s.vf == 4
        assert s.measured_speedup == pytest.approx(m.speedup)
        assert class_count(s.vector_features, IClass.LOAD) == 1
        assert s.lowered_features is not None
