"""Target machine-description tests."""

import pytest

from repro.ir.types import DType
from repro.targets import (
    ARMV8_NEON,
    GENERIC_IR,
    Target,
    TargetError,
    X86_AVX2,
    available_targets,
    get_target,
    register_target,
)
from repro.targets.base import InstrTiming
from repro.targets.classes import FEATURE_ORDER, IClass, feature_index


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_target("armv8-neon") is ARMV8_NEON
        assert get_target("x86-avx2") is X86_AVX2

    @pytest.mark.parametrize(
        "alias,name",
        [
            ("arm", "armv8-neon"),
            ("neon", "armv8-neon"),
            ("ARM", "armv8-neon"),
            ("x86", "x86-avx2"),
            ("avx2", "x86-avx2"),
        ],
    )
    def test_aliases(self, alias, name):
        assert get_target(alias).name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown target"):
            get_target("sparc")

    def test_available(self):
        assert set(available_targets()) >= {"armv8-neon", "x86-avx2"}

    def test_register_custom(self):
        custom = Target(
            name="test-scalar-only",
            vector_bits=64,
            issue_width=1,
            ports={"all": 1},
            timings={(IClass.ADD, "s"): InstrTiming(1, 1, "all")},
        )
        register_target(custom, "tso")
        assert get_target("tso") is custom


class TestLanesAndTiming:
    def test_lane_counts(self):
        assert ARMV8_NEON.lanes(DType.F32) == 4
        assert ARMV8_NEON.lanes(DType.F64) == 2
        assert X86_AVX2.lanes(DType.F32) == 8
        assert X86_AVX2.lanes(DType.I64) == 4

    def test_timing_form_selection(self):
        s = ARMV8_NEON.timing(IClass.LOAD, DType.F32, 1)
        v = ARMV8_NEON.timing(IClass.LOAD, DType.F32, 4)
        assert s.latency != v.latency or s.port == v.port

    def test_int_overrides(self):
        fp = ARMV8_NEON.timing(IClass.ADD, DType.F32, 1)
        it = ARMV8_NEON.timing(IClass.ADD, DType.I32, 1)
        assert it.latency < fp.latency
        assert it.port == "int"

    def test_f64_slow_classes_scaled(self):
        f32 = ARMV8_NEON.timing(IClass.DIV, DType.F32, 4)
        f64 = ARMV8_NEON.timing(IClass.DIV, DType.F64, 4)
        assert f64.latency > f32.latency
        assert f64.occupancy > f32.occupancy

    def test_f64_regular_classes_not_scaled(self):
        f32 = ARMV8_NEON.timing(IClass.ADD, DType.F32, 4)
        f64 = ARMV8_NEON.timing(IClass.ADD, DType.F64, 4)
        assert f64.latency == f32.latency

    def test_missing_timing_raises(self):
        with pytest.raises(TargetError):
            ARMV8_NEON.timing(IClass.GATHER, DType.F32, 4)  # no NEON gather

    def test_unknown_port_raises(self):
        with pytest.raises(TargetError):
            ARMV8_NEON.port_count("gpu")


class TestCapabilities:
    def test_neon_capability_profile(self):
        t = ARMV8_NEON
        assert not t.has_gather and not t.has_scatter and not t.has_masked_mem
        assert t.scalarize_calls

    def test_avx2_capability_profile(self):
        t = X86_AVX2
        assert t.has_gather and t.has_masked_mem and not t.has_scatter

    def test_generic_ir_has_everything(self):
        t = GENERIC_IR
        assert t.has_gather and t.has_scatter and t.has_masked_mem
        assert not t.scalarize_calls


class TestCache:
    def test_bandwidth_monotone_with_working_set(self):
        c = ARMV8_NEON.cache
        bws = [
            c.bandwidth_for(1024),
            c.bandwidth_for(512 * 1024),
            c.bandwidth_for(128 * 1024 * 1024),
        ]
        assert bws[0] > bws[1] > bws[2]

    def test_level_names(self):
        c = ARMV8_NEON.cache
        assert c.level_for(1024) == "L1"
        assert c.level_for(512 * 1024) == "L2"
        assert c.level_for(1 << 30) == "DRAM"

    def test_x86_has_l3(self):
        assert X86_AVX2.cache.level_for(4 * 1024 * 1024) == "L3"


class TestFeatureOrder:
    def test_covers_all_classes(self):
        assert set(FEATURE_ORDER) == set(IClass)

    def test_index_roundtrip(self):
        for c in IClass:
            assert FEATURE_ORDER[feature_index(c)] is c

    def test_stable_length(self):
        assert len(FEATURE_ORDER) == len(IClass) == 24
