"""Warm-started SVR LOOCV: certificate contract and fold parity."""

import numpy as np
import pytest

import repro.fitting.svr as svr_mod
from repro.costmodel import RatedSpeedupModel, SpeedupModel
from repro.experiments import ARM_LLV, X86_SLP, build_dataset
from repro.fitting import LinearSVR
from repro.fitting.svr import (
    CERT_REL_GAP,
    SVRWarmStats,
    svr_fold_objective,
    svr_warm_loocv,
)
from repro.validation import loocv_predictions
from repro.validation.loocv import svr_warm_disabled, warm_svr_eligible


def toy_Xy(n=40, d=6, seed=0, noise=0.05):
    """A well-posed linear regression problem with mild noise."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.5, 4.0, size=(n, d))
    w = rng.uniform(0.1, 1.0, size=d)
    y = X @ w + noise * rng.standard_normal(n)
    return X, y


def cold_fold_coefs(svr_proto, X, y):
    """The per-fold coefficients a cold refit loop produces."""
    n = X.shape[0]
    coefs = []
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        mask[i] = False
        cold = LinearSVR(
            C=svr_proto.C,
            epsilon=svr_proto.epsilon,
            nonneg=svr_proto.nonneg,
            smoothing=svr_proto.smoothing,
            max_iter=svr_proto.max_iter,
        ).fit(X[mask], y[mask])
        mask[i] = True
        coefs.append(cold.coef_)
    return coefs


class TestCertificateContract:
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("target", ["speedup", "cost"])
    def test_warm_matches_cold_within_certificate_bound(self, seed, target):
        """Fold for fold, the warm prediction must sit within the
        distance the certificate permits from the cold refit's.

        Strong convexity (Hessian ⪰ I) gives ‖w − w*‖ ≤ √(2·gap) for
        any point within ``gap`` of the optimum in objective value.
        Warm and cold each certify against gap = CERT_REL_GAP·(1+|f|),
        so their scaled coefficients are ≤ 2·√(2·gap) apart, and the
        held-out prediction differs by at most that times the scaled
        row norm, times the fold's y_scale.  This is the *exact*
        contract — no hand-tuned tolerance.
        """
        X, y = toy_Xy(n=30, seed=seed)
        if target == "cost":
            y = 10.0 * y  # cost-scale targets exercise the y_scale path
        svr = LinearSVR()
        out = svr_warm_loocv(svr, X, y)
        assert out is not None
        raw, stats = out
        assert stats.folds == 30
        assert stats.accepted >= 0.8 * stats.folds
        cold = cold_fold_coefs(svr, X, y)
        mask = np.ones(30, dtype=bool)
        checked = 0
        for i in range(30):
            if not np.isfinite(raw[i]):
                continue  # rejected folds are the caller's cold path
            mask[i] = False
            Xi, yi = X[mask], y[mask]
            mask[i] = True
            f_cold = svr_fold_objective(svr, Xi, yi, cold[i])
            assert np.isfinite(f_cold)
            gap = CERT_REL_GAP * (1.0 + abs(f_cold))
            _, _, cs_i, ysc_i, _ = svr._prepare(Xi, yi)
            row_norm = float(np.linalg.norm(X[i] / cs_i))
            allowed = 2.0 * np.sqrt(2.0 * gap) * row_norm * ysc_i
            cold_pred = float(X[i] @ cold[i])
            assert abs(raw[i] - cold_pred) <= allowed + 1e-9
            checked += 1
        assert checked == stats.accepted

    def test_nonneg_is_outside_the_warm_contract(self):
        X, y = toy_Xy(n=20)
        assert svr_warm_loocv(LinearSVR(nonneg=True), X, y) is None

    def test_tiny_problems_are_outside_the_warm_contract(self):
        X, y = toy_Xy(n=2)
        assert svr_warm_loocv(LinearSVR(), X, y) is None

    def test_stats_str(self):
        stats = SVRWarmStats(folds=10, accepted=8)
        assert stats.rejected == 2
        assert stats.acceptance == pytest.approx(0.8)
        assert "8/10" in str(stats)


class TestSuiteDatasets:
    """The acceptance-rate gate on the real suite datasets."""

    @pytest.mark.parametrize("spec", [ARM_LLV, X86_SLP], ids=["arm", "x86"])
    def test_acceptance_at_least_80_percent(self, spec):
        ds = build_dataset(spec)
        model = RatedSpeedupModel(LinearSVR())
        X, y = model.training_data(ds.samples)
        out = svr_warm_loocv(model.regressor, np.asarray(X), np.asarray(y))
        assert out is not None
        raw, stats = out
        assert stats.folds == len(ds.samples)
        assert stats.acceptance >= 0.8
        # Accepted folds must have produced finite raw predictions.
        assert np.isfinite(raw).sum() == stats.accepted


class TestLOOCVIntegration:
    def test_eligibility_dispatch(self):
        assert warm_svr_eligible(RatedSpeedupModel(LinearSVR()))
        assert warm_svr_eligible(SpeedupModel(LinearSVR()))
        assert not warm_svr_eligible(SpeedupModel(LinearSVR(nonneg=True)))

    def test_warm_and_cold_loocv_agree(self):
        ds = build_dataset(ARM_LLV)
        samples = ds.samples[:40]

        def factory():
            return RatedSpeedupModel(LinearSVR())

        stats = {}
        warm = loocv_predictions(factory, samples, stats=stats)
        with svr_warm_disabled():
            cold = loocv_predictions(factory, samples)
        assert "svr_warm" in stats
        assert np.isfinite(warm).all() and np.isfinite(cold).all()
        # Objective-level equivalence: both paths sit within the
        # certificate gap of the same strongly-convex optimum, so
        # predictions agree to ~sqrt(gap), far tighter than any
        # reported table digit.
        np.testing.assert_allclose(warm, cold, atol=5e-3)

    def test_forced_certificate_failure_falls_back_cold(self, monkeypatch):
        """With an impossible certificate every fold is rejected; the
        LOOCV harness must refit those folds cold and still return a
        full, finite prediction vector that matches the cold path."""
        ds = build_dataset(ARM_LLV)
        samples = ds.samples[:25]

        def factory():
            return RatedSpeedupModel(LinearSVR())

        monkeypatch.setattr(svr_mod, "CERT_REL_GAP", 0.0)
        stats = {}
        preds = loocv_predictions(factory, samples, stats=stats)
        warm_stats = stats["svr_warm"]
        assert warm_stats.accepted == 0
        assert np.isfinite(preds).all()
        with svr_warm_disabled():
            cold = loocv_predictions(factory, samples)
        np.testing.assert_array_equal(preds, cold)


class TestReentrancy:
    def test_fit_does_not_mutate_epsilon(self):
        """The scaled tube width is threaded through ``_objective``
        explicitly; ``fit`` must never write ``self.epsilon``."""
        X, y = toy_Xy(n=20)
        svr = LinearSVR(epsilon=0.25)
        svr.fit(X, 100.0 * y)  # y_scale > 1 → scaled eps != epsilon
        assert svr.epsilon == 0.25

    def test_shared_instance_fits_are_order_independent(self):
        """Two datasets fitted through one instance give the same
        coefficients as through fresh instances (no state leaks)."""
        Xa, ya = toy_Xy(n=20, seed=0)
        Xb, yb = toy_Xy(n=20, seed=1)
        yb = 50.0 * yb
        shared = LinearSVR()
        ca = shared.fit(Xa, ya).coef_.copy()
        cb = shared.fit(Xb, yb).coef_.copy()
        np.testing.assert_array_equal(ca, LinearSVR().fit(Xa, ya).coef_)
        np.testing.assert_array_equal(cb, LinearSVR().fit(Xb, yb).coef_)

    def test_warm_loocv_leaves_instance_unfitted_state_alone(self):
        X, y = toy_Xy(n=15)
        svr = LinearSVR(epsilon=0.1)
        svr_warm_loocv(svr, X, y)
        assert svr.epsilon == 0.1
        assert svr._coef is None  # the sweep never calls fit()
