"""Shared helper functions for the test suite."""

from __future__ import annotations

import numpy as np

from repro.ir import KernelBuilder
from repro.tsvc import Dims

#: Small suite dimensions: fast functional execution, still large
#: enough for every kernel's derived strides/offsets (n//2, n//5, ...).
SMALL = Dims(n=240, n2=16)


def build(name: str, body_fn, **kwargs):
    """Build a kernel from a function ``body_fn(k)``."""
    k = KernelBuilder(name, **kwargs)
    body_fn(k)
    return k.build()


def copy_buffers(bufs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    return {name: arr.copy() for name, arr in bufs.items()}


def assert_buffers_close(a, b, rtol=2e-4, atol=1e-5, context=""):
    assert set(a) == set(b), f"{context}: buffer sets differ"
    for name in a:
        np.testing.assert_allclose(
            a[name],
            b[name],
            rtol=rtol,
            atol=atol,
            err_msg=f"{context}: array {name!r} diverged",
        )
