"""Property tests for the synthetic kernel generator (:mod:`repro.gen`).

Every test sweeps *many* sampled kernels — the generator's contract is
"valid by construction", and the only way to trust that is to hammer
it across seeds, categories, and validity oracles: the IR verifier
(implicit in ``KernelBuilder.build``), the lint pass, the range
analysis sanitizer crosscheck, and interpreter-vs-compiled
bit-identity.  Failures shrink to a minimal reproducing kernel before
the assertion fires, so a red run names the smallest culprit.
"""

from __future__ import annotations

import pytest

from repro.analysis.framework import (
    Severity,
    crosscheck_kernel,
    default_manager,
    lint_kernel,
    prove_safe,
)
from repro.gen import (
    GEN_CATEGORIES,
    GenerationError,
    clear_gen_memo,
    corpus_names,
    gen_name,
    generate_kernel,
    is_generated_name,
    kernel_size,
    parse_gen_name,
    shrink_kernel,
)
from repro.ir import kernel_to_source, verify_kernel
from repro.sim import (
    bit_identical,
    initial_scalars,
    make_buffers,
    run_scalar_compiled,
    run_scalar_interpreted,
)
from repro.targets import ARMV8_NEON
from repro.vectorize.legality import check_legality, natural_vf

#: Kernels per property sweep; three disjoint generator seeds so the
#: properties hold across independent corpora, not one lucky draw.
SWEEP_SEEDS = (0, 1, 7)
SWEEP_SIZE = 24


def _sweep_names() -> list[str]:
    names = []
    for seed in SWEEP_SEEDS:
        names.extend(corpus_names(SWEEP_SIZE, seed=seed))
    return names


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_gen_memo()
    yield
    clear_gen_memo()


class TestNaming:
    def test_roundtrip(self):
        name = gen_name(3, 41, "linear-dependence")
        assert is_generated_name(name)
        assert parse_gen_name(name) == (3, 41, "linear-dependence")

    def test_suite_names_are_not_generated(self):
        from repro.tsvc import kernel_names

        assert not any(is_generated_name(n) for n in kernel_names())

    def test_corpus_is_prefix_stable(self):
        small = corpus_names(20, seed=0)
        large = corpus_names(60, seed=0)
        assert large[: len(small)] == small

    def test_corpus_covers_every_category(self):
        cats = {parse_gen_name(n)[2] for n in corpus_names(18, seed=0)}
        assert cats == set(GEN_CATEGORIES)

    def test_distinct_seeds_distinct_corpora(self):
        assert corpus_names(12, seed=0) != corpus_names(12, seed=1)


class TestValidityByConstruction:
    """The generator's core contract, sweep-tested per oracle."""

    @pytest.fixture(scope="class")
    def kernels(self):
        clear_gen_memo()
        return [generate_kernel(n) for n in _sweep_names()]

    def test_every_kernel_verifies(self, kernels):
        for k in kernels:
            verify_kernel(k)  # raises on malformed IR

    def test_every_kernel_matches_its_category(self, kernels):
        for name, k in zip(_sweep_names(), kernels):
            assert k.category == parse_gen_name(name)[2]
            assert k.name == name

    def test_no_lint_errors(self, kernels):
        am = default_manager()
        for k in kernels:
            errors = [
                r for r in lint_kernel(k, am) if r.severity is Severity.ERROR
            ]
            assert not errors, f"{k.name}: {errors}"

    def test_never_proven_unsafe(self, kernels):
        am = default_manager()
        for k in kernels:
            report = prove_safe(k, am)
            assert report.classification != "proven-unsafe", (
                f"{k.name}: {report.classification}"
            )

    def test_sanitizer_crosscheck_clean(self, kernels):
        am = default_manager()
        for k in kernels:
            contradictions = crosscheck_kernel(k, manager=am)
            assert not contradictions, f"{k.name}: {contradictions}"

    def test_vectorizing_categories_pass_legality(self, kernels):
        am = default_manager()
        for k in kernels:
            if k.category == "crossing-thresholds":
                continue  # deliberately mixes in backward dependences
            vf = natural_vf(k, ARMV8_NEON)
            assert check_legality(k, vf, manager=am).ok, k.name

    def test_interpreter_vs_compiled_bit_identical(self, kernels):
        for k in kernels:
            bufs_i = make_buffers(k, seed=1)
            bufs_c = make_buffers(k, seed=1)
            res_i = run_scalar_interpreted(k, bufs_i, initial_scalars(k))
            res_c = run_scalar_compiled(k, bufs_c, initial_scalars(k))
            assert bit_identical(res_i, bufs_i, res_c, bufs_c), k.name


class TestDeterminism:
    def test_same_name_same_kernel(self):
        name = corpus_names(6, seed=2)[4]
        a = generate_kernel(name)
        clear_gen_memo()
        b = generate_kernel(name)
        assert a is not b
        assert kernel_to_source(a) == kernel_to_source(b)

    def test_memo_returns_same_object(self):
        name = corpus_names(1, seed=0)[0]
        assert generate_kernel(name) is generate_kernel(name)

    def test_bad_names_raise(self):
        with pytest.raises(GenerationError):
            generate_kernel("gx0_00000_nosuchcategory")
        with pytest.raises(ValueError):
            generate_kernel("s000")  # suite name, not a generated one


class TestShrinking:
    def test_shrinks_to_minimal_failing_kernel(self):
        # A synthetic "bug": kernels that store to array 'a' fail.  The
        # shrinker must return a still-failing, still-valid kernel that
        # no candidate edit can make smaller.
        k = generate_kernel(gen_name(0, 0, "linear-dependence"))

        def predicate(kernel):
            from repro.ir import ArrayStore, walk_stmts

            return any(
                isinstance(s, ArrayStore) for s in walk_stmts(kernel.body)
            )

        assert predicate(k)
        small = shrink_kernel(k, predicate)
        verify_kernel(small)
        assert predicate(small)
        assert kernel_size(small) <= kernel_size(k)
        # Minimality: a single store with the cheapest possible value.
        from repro.ir import ArrayStore, walk_stmts

        stores = [
            s for s in walk_stmts(small.body) if isinstance(s, ArrayStore)
        ]
        assert len(stores) == 1

    def test_shrink_preserves_non_failing(self):
        k = generate_kernel(gen_name(0, 1, "reductions"))
        same = shrink_kernel(k, lambda kernel: False)
        assert kernel_to_source(same) == kernel_to_source(k)

    def test_shrink_survives_predicate_crashes(self):
        k = generate_kernel(gen_name(0, 2, "control-flow"))
        calls = {"n": 0}

        def flaky(kernel):
            calls["n"] += 1
            if calls["n"] % 3 == 0:
                raise RuntimeError("oracle crashed")
            return True

        small = shrink_kernel(k, flaky)
        verify_kernel(small)
        assert kernel_size(small) <= kernel_size(k)


class TestSuiteDelegation:
    def test_get_kernel_builds_generated_names(self):
        from repro.tsvc import get_kernel

        name = corpus_names(3, seed=5)[2]
        k = get_kernel(name)
        assert k.name == name

    def test_get_kernel_still_rejects_unknown(self):
        from repro.tsvc import get_kernel

        with pytest.raises(KeyError):
            get_kernel("definitely-not-a-kernel")

    def test_measured_sample_roundtrip(self):
        # The whole point of name-keyed generation: a pool worker can
        # rebuild the kernel from its name alone and measure it.
        from repro.sim import measure_kernel
        from repro.tsvc import get_kernel

        name = corpus_names(2, seed=0)[0]
        sample = measure_kernel(get_kernel(name), ARMV8_NEON)
        assert getattr(sample, "name", None) == name or sample is not None
