"""Plan-space DSE engine tests (repro.dse + repro.vectorize.plan).

The contract under test, layer by layer:

* **Enumeration** — every emitted :class:`PlanPoint` is legal: it
  materializes into a real vectorization plan (or is the scalar
  point), the scalar point comes first, and the natural-VF default
  leads the vector points.
* **Oracle batching** — one batched predict over the candidate set is
  bit-identical to scoring each pseudo-sample individually.
* **Drivers** — deterministic under a seed (bandit and hill-climb
  replay exactly), and the ``verified`` driver can never do worse
  than the natural-VF default (its shortlist always contains it).
* **Memoization** — warm searches return the cached object; bumping
  the model (refit on different data → new weights) changes the model
  fingerprint and invalidates every dependent search.
* **Chaos** — injected faults drain deterministically and a faulted
  search returns the bit-identical result of an unfaulted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.interleave import interleave_stream
from repro.costmodel.speedup import SpeedupModel
from repro.dse import (
    clear_dse_cache,
    dse_cache_info,
    model_fingerprint,
    search_kernel,
)
from repro.dse import oracle, points as points_mod, search
from repro.fitting.nnls import NonNegativeLeastSquares
from repro.pipeline.faultinject import parse_faults
from repro.serve.chaos import suite_payloads
from repro.targets import ARMV8_NEON
from repro.tsvc import all_kernels
from repro.vectorize.plan import (
    PlanPoint,
    default_plan_point,
    enumerate_plan_points,
    is_plan,
    scalar_point,
)

from tests.helpers import SMALL

SUITE = list(all_kernels(dims=SMALL))


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_dse_cache()
    yield
    clear_dse_cache()


@pytest.fixture(scope="module")
def model():
    samples = [s for _, _, s in suite_payloads(12)]
    return SpeedupModel(NonNegativeLeastSquares()).fit(samples)


@pytest.fixture(scope="module")
def bumped_model():
    """Same family, different fit → different weights → new version."""
    samples = [s for _, _, s in suite_payloads(8)]
    return SpeedupModel(NonNegativeLeastSquares()).fit(samples)


# -- plan-space enumeration ---------------------------------------------------


def test_planpoint_validation():
    with pytest.raises(ValueError):
        # vector points need vf >= 2
        PlanPoint(vf=1, interleave=1, unroll=1, strategy="llv", target="t")
    with pytest.raises(ValueError):
        PlanPoint(vf=4, interleave=1, unroll=1, strategy="bogus", target="t")
    with pytest.raises(ValueError):
        # scalar carries no vector knobs
        PlanPoint(vf=1, interleave=2, unroll=1, strategy="scalar", target="t")
    p = scalar_point(ARMV8_NEON)
    assert p.is_scalar and p.label() == "scalar"


@pytest.mark.parametrize("kernel", SUITE[:24], ids=lambda k: k.name)
def test_enumeration_emits_only_legal_points(kernel):
    """Every emitted vector point materializes into a real plan —
    enumeration prunes by legality, it does not re-walk dependences
    per point and it never emits a point the vectorizer rejects."""
    points = enumerate_plan_points(kernel, ARMV8_NEON)
    assert points[0].is_scalar, "scalar point must come first"
    assert len(set(points)) == len(points), "duplicate plan points"
    bases: dict = {}
    for point in points[1:]:
        result = points_mod.materialize_point(
            kernel, ARMV8_NEON, point, bases=bases
        )
        assert is_plan(result), (
            f"{kernel.name}: emitted point {point.label()} does not "
            f"materialize: {getattr(result, 'reason', result)}"
        )


def test_default_leads_vector_points():
    for kernel in SUITE[:16]:
        points = enumerate_plan_points(kernel, ARMV8_NEON)
        vector = [p for p in points if not p.is_scalar]
        if not vector:
            continue
        default = default_plan_point(kernel, ARMV8_NEON)
        assert vector[0] == default
        assert default.interleave == 1 and default.unroll == 1


# -- the interleave transform -------------------------------------------------


def test_interleave_stream_shape():
    from repro.codegen.vector_gen import lower_vector
    from repro.vectorize import vectorize_loop

    kernel = next(k for k in SUITE if k.name == "s000")
    plan = vectorize_loop(kernel, ARMV8_NEON)
    stream = lower_vector(plan, ARMV8_NEON)
    ic2 = interleave_stream(stream, 2)
    assert ic2.iters == stream.iters // 2
    assert ic2.elems_per_iter == stream.elems_per_iter * 2
    assert len(ic2.body) == 2 * len(stream.body)
    assert ic2.name.endswith(".ic2")
    # ids must stay unique after replication
    ids = [ins.id for ins in ic2.all_instrs()]
    assert len(ids) == len(set(ids))
    with pytest.raises(ValueError):
        interleave_stream(stream, 7)  # does not divide iters


# -- batched oracle -----------------------------------------------------------


def test_batched_scores_match_per_point_predict(model):
    """One batched predict == per-sample predicts, bit for bit."""
    kernel = SUITE[0]
    points = enumerate_plan_points(kernel, ARMV8_NEON)
    scores = oracle.score_points(kernel, ARMV8_NEON, points, model)
    samples, indices = oracle.candidate_samples(kernel, ARMV8_NEON, points)
    assert len(samples) == len(points) - 1  # all vector points scored
    for sample, i in zip(samples, indices):
        assert scores[i] == model.predict_speedup(sample)
    for i, p in enumerate(points):
        if p.is_scalar:
            assert scores[i] == 1.0


def test_pick_best_margin_anchors_to_default():
    target = ARMV8_NEON.name
    points = [
        scalar_point(ARMV8_NEON),
        PlanPoint(vf=4, interleave=1, unroll=1, strategy="llv", target=target),
        PlanPoint(vf=4, interleave=2, unroll=1, strategy="llv", target=target),
    ]
    # epsilon above the anchor: stay at the default
    i, best, _ = oracle.pick_best(points, [1.0, 2.0, 2.0000001])
    assert i == 1 and best == points[1]
    # clearly above the margin: deviate
    i, best, _ = oracle.pick_best(points, [1.0, 2.0, 2.5])
    assert i == 2


# -- drivers ------------------------------------------------------------------


def test_drivers_deterministic_under_seed(model):
    kernel = SUITE[1]
    for driver in search.DRIVERS:
        a = search_kernel(kernel, ARMV8_NEON, model, driver=driver, seed=3)
        clear_dse_cache()
        b = search_kernel(kernel, ARMV8_NEON, model, driver=driver, seed=3)
        assert a.to_dict() == b.to_dict(), driver


def test_verified_never_below_default(model):
    """The deployment arm's measured speedup ≥ the natural-VF default
    on every kernel — by construction (the default is shortlisted)."""
    for kernel in SUITE[:12]:
        res = search_kernel(kernel, ARMV8_NEON, model, driver="verified")
        meas = points_mod.measure_points(kernel, ARMV8_NEON, res.points)
        d_idx = oracle.default_index(res.points)
        default_speedup = meas[d_idx].speedup if meas[d_idx].ok else 0.0
        assert res.scores[res.best_index] >= default_speedup, kernel.name
        assert res.evaluations <= 1 + search.VERIFY_SHORTLIST


def test_hill_climb_neighbors_single_coordinate():
    target = ARMV8_NEON.name
    points = [
        scalar_point(ARMV8_NEON),
        PlanPoint(vf=4, interleave=1, unroll=1, strategy="llv", target=target),
        PlanPoint(vf=8, interleave=1, unroll=1, strategy="llv", target=target),
        PlanPoint(vf=8, interleave=2, unroll=1, strategy="llv", target=target),
    ]
    n1 = search._neighbors(points, 1)
    assert 0 in n1 and 2 in n1 and 3 not in n1  # two coords differ
    assert search._neighbors(points, 0) == [1, 2, 3]  # scalar reaches all


# -- memoization --------------------------------------------------------------


def test_memo_hits_and_model_bump_invalidates(model, bumped_model):
    kernel = SUITE[2]
    a = search_kernel(kernel, ARMV8_NEON, model)
    before = dse_cache_info()
    b = search_kernel(kernel, ARMV8_NEON, model)
    after = dse_cache_info()
    assert b is a, "warm search must return the memoized object"
    assert after["hits"] == before["hits"] + 1

    assert model_fingerprint(model) != model_fingerprint(bumped_model)
    c = search_kernel(kernel, ARMV8_NEON, bumped_model)
    assert c is not a
    assert dse_cache_info()["misses"] == after["misses"] + 1


def test_cache_disabled_recomputes(model):
    from repro.dse.engine import dse_cache_disabled

    kernel = SUITE[3]
    with dse_cache_disabled():
        a = search_kernel(kernel, ARMV8_NEON, model)
        b = search_kernel(kernel, ARMV8_NEON, model)
    assert a is not b
    assert a.to_dict() == b.to_dict()


# -- chaos --------------------------------------------------------------------

@pytest.mark.parametrize("driver", ["exhaustive", "verified"])
def test_faulted_search_bit_identical(model, driver):
    kernel = SUITE[4]
    clean = search_kernel(kernel, ARMV8_NEON, model, driver=driver)
    clear_dse_cache()
    plan = parse_faults("crash:0.5", seed=11)
    faulted = search_kernel(
        kernel, ARMV8_NEON, model, driver=driver, faults=plan
    )
    assert faulted.to_dict() == clean.to_dict()
