"""Frontend parser tests: grammar coverage, errors, and end-to-end use."""

import numpy as np
import pytest

from repro.frontend import ParseError, parse_kernel, tokenize
from repro.ir import Affine, IfBlock, Indirect, ScalarAssign
from repro.ir.types import DType
from repro.sim.executor import make_buffers, run_scalar
from repro.targets import ARMV8_NEON
from repro.vectorize import vectorize_loop
from repro.vectorize.plan import VectorizationPlan


SAXPY = """
kernel saxpy {
    f32 a[256], b[256];
    f32 alpha = 2.0;
    for (i = 0; i < 256; i++) {
        a[i] = a[i] + alpha * b[i];
    }
}
"""


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize("for (i = 0; i < 10e2; i++) a[i] 1.5 <= kernel x_1")
        kinds = [t.kind for t in toks]
        assert "kw" in kinds and "ident" in kinds and "float" in kinds
        assert kinds[-1] == "eof"

    def test_comments_skipped(self):
        toks = tokenize("a // comment\n b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_bad_character(self):
        from repro.frontend import LexError

        with pytest.raises(LexError):
            tokenize("a $ b")


class TestParserBasics:
    def test_saxpy(self):
        kern = parse_kernel(SAXPY)
        assert kern.name == "saxpy"
        assert kern.inner.trip == 256
        assert set(kern.arrays) == {"a", "b"}
        assert kern.scalars["alpha"].init == 2.0
        assert len(kern.body) == 1

    def test_offsets_and_strides(self):
        kern = parse_kernel(
            """
            kernel k {
                f32 a[256], b[256];
                for (i = 0; i < 100; i++) {
                    a[2*i + 1] = b[i - 3] + b[(100 - 1) - i];
                }
            }
            """
        )
        store = kern.body[0]
        assert store.subscript == (Affine((2,), 1),)
        subs = {ld.subscript[0] for ld in kern.loads()}
        assert Affine((1,), -3) in subs
        assert Affine((-1,), 99) in subs

    def test_two_level_nest(self):
        kern = parse_kernel(
            """
            kernel k2 {
                f32 aa[16][16];
                for (i = 0; i < 16; i++) {
                    for (j = 0; j < 16; j++) {
                        aa[i][j] = aa[i][j] * 2.0;
                    }
                }
            }
            """
        )
        assert kern.depth == 2
        assert kern.arrays["aa"].ndim == 2

    def test_indirect_subscript(self):
        kern = parse_kernel(
            """
            kernel g {
                f32 a[64], b[64];
                i32 ip[64];
                for (i = 0; i < 64; i++) {
                    a[i] = b[ip[i]];
                }
            }
            """
        )
        (ld,) = [x for x in kern.loads() if x.array == "b"]
        assert ld.subscript == (Indirect("ip", Affine((1,), 0)),)

    def test_if_else(self):
        kern = parse_kernel(
            """
            kernel c {
                f32 a[64], b[64];
                for (i = 0; i < 64; i++) {
                    if (b[i] > 0.0) { a[i] = b[i]; } else { a[i] = 0.0 - b[i]; }
                }
            }
            """
        )
        (blk,) = kern.body
        assert isinstance(blk, IfBlock)
        assert blk.else_body

    def test_reduction(self):
        kern = parse_kernel(
            """
            kernel r {
                f32 a[64];
                f32 s = 0.0;
                for (i = 0; i < 64; i++) {
                    s = s + a[i];
                }
            }
            """
        )
        assert isinstance(kern.body[0], ScalarAssign)

    def test_calls(self):
        kern = parse_kernel(
            """
            kernel m {
                f32 a[64], b[64], c[64];
                for (i = 0; i < 64; i++) {
                    a[i] = min(b[i], c[i]) + max(b[i], 0.0)
                         + abs(c[i]) + sqrt(b[i]) + select(b[i] > c[i], b[i], c[i]);
                }
            }
            """
        )
        text = str(kern.body[0])
        for frag in ("min(", "max(", "abs(", "sqrt(", "?"):
            assert frag in text

    def test_loop_var_as_value(self):
        kern = parse_kernel(
            """
            kernel v {
                f32 a[64], b[64];
                for (i = 0; i < 64; i++) {
                    a[i] = b[i] * (i + 1);
                }
            }
            """
        )
        assert "i" in str(kern.body[0].value)

    def test_f64_arrays(self):
        kern = parse_kernel(
            """
            kernel d {
                f64 a[64], b[64];
                for (i = 0; i < 64; i++) { a[i] = b[i] + 1.0; }
            }
            """
        )
        assert kern.arrays["a"].dtype is DType.F64


class TestParserErrors:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("kernel k { f32 a[8]; for (i = 1; i < 8; i++) { a[i] = 1.0; } }", "start at 0"),
            ("kernel k { f32 a[8]; for (i = 0; i < 8; i++) { b[i] = 1.0; } }", "undeclared"),
            ("kernel k { f32 a[8]; for (i = 0; i < 8; i++) { a[i*i] = 1.0; } }", "affine"),
            ("kernel k { f32 a[8]; for (i = 0; i < 8; i++) { a[i] = foo(a[i]); } }", "undeclared identifier"),
            ("kernel k { f32 a[8]; for (i = 0; i < 8; i++) { s = 1.0; } }", "undeclared scalar"),
            ("kernel k { f32 a[8]; for (i = 0; i < 8; i++) { a = 1.0; } }", "undeclared scalar"),
        ],
    )
    def test_rejects(self, source, match):
        with pytest.raises(ParseError, match=match):
            parse_kernel(source)

    def test_float_index_array_rejected(self):
        with pytest.raises(ParseError):
            parse_kernel(
                """
                kernel k {
                    f32 a[8], f[8];
                    for (i = 0; i < 8; i++) { a[f[i]] = 1.0; }
                }
                """
            )


class TestEndToEnd:
    def test_parsed_kernel_runs_and_vectorizes(self):
        kern = parse_kernel(SAXPY)
        plan = vectorize_loop(kern, ARMV8_NEON)
        assert isinstance(plan, VectorizationPlan)
        bufs = make_buffers(kern, seed=0)
        a0, b0 = bufs["a"].copy(), bufs["b"].copy()
        run_scalar(kern, bufs)
        np.testing.assert_allclose(
            bufs["a"], a0 + np.float32(2.0) * b0, rtol=1e-6
        )

    def test_printer_output_reparses(self):
        """Pretty-printed 1-D affine kernels round-trip."""
        from repro.ir import kernel_to_source

        kern = parse_kernel(SAXPY)
        text = kernel_to_source(kern)
        # The printer emits the same C-like dialect, minus the kernel
        # header; rebuild it and re-parse.
        body_lines = [ln for ln in text.splitlines() if not ln.startswith("//")]
        src = "kernel roundtrip {\n" + "\n".join(body_lines) + "\n}"
        kern2 = parse_kernel(src)
        assert [str(s) for s in kern2.body] == [str(s) for s in kern.body]
