"""2-D executor edge cases: tail ordering, cross-row dependences."""

import pytest

from repro.sim.executor import make_buffers, run_scalar, run_vector
from repro.targets import ARMV8_NEON
from repro.vectorize import vectorize_loop

from tests.helpers import assert_buffers_close, build, copy_buffers


def check(body_fn, seed=7):
    kern = build("t", body_fn)
    plan = vectorize_loop(kern, ARMV8_NEON)
    assert not hasattr(plan, "reason"), f"failed: {plan}"
    b1 = make_buffers(kern, seed=seed)
    b2 = copy_buffers(b1)
    r1 = run_scalar(kern, b1)
    r2 = run_vector(plan, b2)
    assert_buffers_close(b1, b2)
    return r1, r2


def test_row_dependence_with_ragged_inner_trip():
    """Inner trip 13 (remainder 1 at VF 4) with a cross-row flow dep.

    The scalar tail of each row must run before the next row's vector
    part, or the row-to-row dependence reads stale values.
    """

    def body(k):
        aa = k.array("aa", extents=(16, 16))
        bb = k.array("bb", extents=(16, 16))
        i = k.loop(15)
        j = k.loop(13)
        aa[i + 1, j] = aa[i, j] * 0.5 + bb[i, j]

    check(body)


def test_row_dependence_with_column_shift():
    def body(k):
        aa = k.array("aa", extents=(16, 16))
        i = k.loop(15)
        j = k.loop(13)
        aa[i + 1, j] = aa[i, j + 2] + 1.0

    check(body)


def test_reduction_across_2d_with_remainder():
    def body(k):
        aa = k.array("aa", extents=(8, 11))
        s = k.scalar("s")
        i = k.loop(8)
        j = k.loop(11)  # 11 % 4 == 3
        s.set(s + aa[i, j])

    r1, r2 = check(body)
    assert float(r1.scalars["s"]) == pytest.approx(
        float(r2.scalars["s"]), rel=1e-3
    )


def test_guarded_2d_with_remainder():
    def body(k):
        aa = k.array("aa", extents=(8, 14))
        bb = k.array("bb", extents=(8, 14))
        i = k.loop(8)
        j = k.loop(14)
        with k.if_(bb[i, j] > 0.0):
            aa[i, j] = bb[i, j] * 2.0

    check(body)


def test_inner_invariant_param_broadcast():
    def body(k):
        aa = k.array("aa", extents=(8, 16))
        c = k.array("c", extents=(8,))
        i = k.loop(8)
        j = k.loop(16)
        aa[i, j] = aa[i, j] + c[i]

    check(body)
