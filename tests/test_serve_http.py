"""HTTP service + worker pool: probes, batches, backpressure, deadlines."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.pipeline.faultinject import FaultPlan
from repro.serve import Advisor, AdvisorServer, ModelRegistry, WorkerPool

SAXPY = """
kernel saxpy {
    f32 a[256], b[256];
    f32 alpha = 2.0;
    for (i = 0; i < 256; i++) {
        a[i] = a[i] + alpha * b[i];
    }
}
"""


def http(method, url, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


@pytest.fixture
def server(tmp_path):
    srv = AdvisorServer(
        Advisor(ModelRegistry(tmp_path / "registry")),
        workers=2,
        timeout=10.0,
    ).start()
    yield srv
    srv.stop()


def test_health_and_readiness_probes(server):
    status, body, _ = http("GET", server.url + "/v1/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["pool"]["alive"] == 2
    assert {b["name"] for b in body["breakers"]} == {"native", "prepass"}

    status, body, _ = http("GET", server.url + "/v1/ready")
    assert status == 200 and body["ready"] is True


def test_mixed_valid_invalid_batch(server):
    batch = [
        ({"kernel": SAXPY}, 200),
        ({"kernel": "kernel x { not valid }"}, 400),
        ({}, 400),
        ({"kernel": SAXPY, "target": "vax"}, 400),
        ({"kernel": SAXPY, "target": "x86-avx2"}, 200),
    ]
    for payload, expected in batch:
        status, body, _ = http("POST", server.url + "/v1/advise", payload)
        assert status == expected, body
        if expected == 200:
            assert isinstance(body["vectorized"], bool)
            assert body["kernel"] == "saxpy"
        else:
            assert "error" in body


def test_unknown_route_404_and_malformed_body_400(server):
    status, _, _ = http("GET", server.url + "/v1/nothing")
    assert status == 404
    req = urllib.request.Request(
        server.url + "/v1/advise", data=b"not json", method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            status = resp.status
    except urllib.error.HTTPError as exc:
        status = exc.code
    assert status == 400


def test_models_and_reload_endpoints(server):
    status, body, _ = http(
        "GET", server.url + "/v1/models?target=armv8-neon&vectorizer=llv"
    )
    assert status == 200 and body["versions"] == []
    status, body, _ = http("POST", server.url + "/v1/reload")
    assert status == 200 and body["reloaded"] == {}


def test_graceful_shutdown_drains_in_flight_work(tmp_path):
    srv = AdvisorServer(
        Advisor(ModelRegistry(tmp_path / "registry")),
        workers=2,
        timeout=10.0,
    ).start()
    results = []

    def fire():
        results.append(http("POST", srv.url + "/v1/advise", {"kernel": SAXPY}))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for t in threads:
        t.start()
    time.sleep(0.05)  # let the requests reach the pool
    srv.stop(drain=True)
    for t in threads:
        t.join(timeout=15)
    assert len(results) == 4
    assert all(status == 200 for status, _, _ in results)
    # After shutdown the listener is gone.
    with pytest.raises(Exception):
        http("GET", srv.url + "/v1/ready")


# -- worker pool directly ----------------------------------------------------


def hang_plan(rate=1.0, **rates):
    rates = {"slow_handler": rate, **rates}
    return FaultPlan(rates=rates, seed=0, hang_seconds=60.0)


def test_pool_backpressure_rejects_with_retry_after(tmp_path):
    pool = WorkerPool(
        Advisor(ModelRegistry(tmp_path / "r")),
        workers=1,
        queue_size=1,
        timeout=0.6,
        fault_plan=hang_plan(),
        hang_s=60.0,
    ).start()
    try:
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda i=i: outcomes.append(
                    pool.submit(
                        {"kernel": SAXPY}, request_id=f"r{i}", attempt=0
                    )
                )
            )
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        statuses = sorted(s for s, _ in outcomes)
        # With one hung worker and a one-deep queue, most of the burst
        # must be shed at admission (429); whatever was admitted times
        # out at its deadline (503).  Nothing hangs, nothing gets 200.
        assert len(outcomes) == 6
        assert statuses.count(429) >= 3
        assert all(s in (429, 503) for s in statuses)
        for status, body in outcomes:
            assert body.get("retry_after", 0) > 0
    finally:
        pool.stop(drain=False, timeout=0.5)


def test_pool_deadline_answered_in_time_and_worker_replaced(tmp_path):
    plan = FaultPlan(rates={"worker_crash": 0.5}, seed=0, hang_seconds=60.0)
    # Pick a request id whose deterministic schedule crashes attempt 0
    # but spares attempt 1 — the retry-drains-the-fault property.
    rid = next(
        f"crash{i}"
        for i in range(100)
        if plan.decide("worker_crash", f"crash{i}", 0)
        and not plan.decide("worker_crash", f"crash{i}", 1)
    )
    pool = WorkerPool(
        Advisor(ModelRegistry(tmp_path / "r")),
        workers=2,
        queue_size=8,
        timeout=0.4,
        fault_plan=plan,
    ).start()
    try:
        t0 = time.monotonic()
        status, body = pool.submit(
            {"kernel": SAXPY}, request_id=rid, attempt=0
        )
        elapsed = time.monotonic() - t0
        assert status == 503
        assert "crash" in body["error"]
        assert elapsed < 0.4 + 0.5
        # The supervisor replaces the dead worker.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if pool.stats.as_dict()["workers_replaced"] >= 1:
                break
            time.sleep(0.02)
        assert pool.stats.as_dict()["workers_replaced"] >= 1
        assert pool.health()["alive"] == 2
        # A retry (fresh attempt) drains the fault and succeeds.
        status, body = pool.submit(
            {"kernel": SAXPY}, request_id=rid, attempt=1
        )
        assert status == 200 and body["kernel"] == "saxpy"
    finally:
        pool.stop(drain=False, timeout=0.5)


def test_pool_answers_within_deadline_under_hang(tmp_path):
    pool = WorkerPool(
        Advisor(ModelRegistry(tmp_path / "r")),
        workers=1,
        queue_size=4,
        timeout=0.3,
        fault_plan=hang_plan(),
        hang_s=60.0,
    ).start()
    try:
        t0 = time.monotonic()
        status, body = pool.submit(
            {"kernel": SAXPY}, request_id="hangme", attempt=0
        )
        elapsed = time.monotonic() - t0
        assert status == 503
        assert elapsed < 0.3 + 0.5
    finally:
        pool.stop(drain=False, timeout=0.5)
