"""SLP vectorizer tests: pack decisions and partial vectorization."""

from repro.codegen.slp_gen import lower_slp
from repro.ir import DType
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.targets.classes import IClass
from repro.vectorize import slp_vectorize
from repro.vectorize.plan import VectorizationFailure, VectorizationPlan

from tests.helpers import build


def plan_for(body_fn, target=X86_AVX2, vf=None):
    return slp_vectorize(build("t", body_fn), target, vf)


def test_contiguous_store_packs():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = b[i] * 2.0

    plan = plan_for(body)
    assert isinstance(plan, VectorizationPlan)
    assert plan.kind == "slp"
    assert plan.packed_stmts == {0}


def test_indirect_statement_stays_scalar():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[i] = b[i] * 2.0
        c[i] = b[ip[i]] + 1.0

    plan = plan_for(body)
    assert plan.packed_stmts == {0}


def test_strided_store_not_packed():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(128)
        a[2 * i] = b[i] + 1.0

    plan = plan_for(body)
    assert isinstance(plan, VectorizationFailure)
    assert plan.reason == "no packable groups"


def test_guarded_statements_not_packed():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        with k.if_(b[i] > 0.0):
            a[i] = b[i]

    plan = plan_for(body)
    assert isinstance(plan, VectorizationFailure)


def test_reduction_packs():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(256)
        s.set(s + a[i])

    plan = plan_for(body)
    assert isinstance(plan, VectorizationPlan)
    assert 0 in plan.packed_stmts


def test_private_chain_packs_together():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        t = k.scalar("t")
        i = k.loop(256)
        t.set(b[i] + c[i])
        a[i] = t * t

    plan = plan_for(body)
    assert plan.packed_stmts == {0, 1}


def test_private_consumed_by_guard_blocks_packing():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        t = k.scalar("t")
        i = k.loop(256)
        t.set(b[i] + c[i])
        a[i] = t * 2.0
        with k.if_(t > 0.0):
            c[i] = 1.0

    plan = plan_for(body)
    # t leaks into scalar-side control flow: nothing referencing t packs.
    if isinstance(plan, VectorizationPlan):
        assert 0 not in plan.packed_stmts
        assert 1 not in plan.packed_stmts
    else:
        assert plan.reason == "no packable groups"


def test_illegal_dependences_still_rejected():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = a[i - 1] + b[i]

    plan = plan_for(body)
    assert isinstance(plan, VectorizationFailure)
    assert plan.reason == "unsafe memory dependence"


def test_trip_below_factor_rejected():
    def body(k):
        a = k.array("a", extents=(16,))
        i = k.loop(4)
        a[i] = a[i] + 1.0

    plan = plan_for(body, X86_AVX2)  # VF 8 > trip 4
    assert isinstance(plan, VectorizationFailure)


def test_lowered_stream_shape_partial():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[i] = b[i] * 2.0
        c[i] = b[ip[i]] + 1.0

    kern = build("t", body)
    plan = slp_vectorize(kern, X86_AVX2)
    stream = lower_slp(plan, X86_AVX2)
    counts = stream.counts()
    # Packed statement: one vector mul/store; scalar side: 8 copies.
    vec_stores = [i_ for i_ in stream.body if i_.iclass is IClass.STORE and i_.lanes == 8]
    scalar_stores = [i_ for i_ in stream.body if i_.iclass is IClass.STORE and i_.lanes == 1]
    assert len(vec_stores) == 1
    assert len(scalar_stores) == 8
    assert stream.elems_per_iter == 8


def test_remainder_recorded():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(250)  # 250 % 8 = 2
        a[i] = b[i] + 1.0

    kern = build("t", body)
    plan = slp_vectorize(kern, X86_AVX2)
    stream = lower_slp(plan, X86_AVX2)
    assert stream.iters == 31
    assert stream.remainder == 2


def test_neon_slp_vf4():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = b[i] + 1.0

    plan = plan_for(body, ARMV8_NEON)
    assert isinstance(plan, VectorizationPlan)
    assert plan.vf == 4
