"""Unit tests for repro.ir.expr: nodes, typing rules, subscripts."""

import pytest

from repro.ir.expr import (
    Affine,
    BinOp,
    BinOpKind,
    CmpKind,
    Compare,
    Const,
    Convert,
    Indirect,
    IterValue,
    Load,
    ScalarRef,
    Select,
    UnOp,
    UnOpKind,
    affine1,
)
from repro.ir.types import DType


class TestAffine:
    def test_coeff_access(self):
        a = Affine((2, 3), 5)
        assert a.coeff(0) == 2
        assert a.coeff(1) == 3
        assert a.coeff(7) == 0  # out of range -> 0

    def test_shifted(self):
        assert Affine((1,), 2).shifted(3) == Affine((1,), 5)

    def test_at_depth_pads_and_truncates(self):
        assert Affine((1,), 2).at_depth(2) == Affine((1, 0), 2)
        assert Affine((1, 2), 0).at_depth(1) == Affine((1,), 0)

    def test_is_constant(self):
        assert Affine((0, 0), 7).is_constant
        assert not Affine((1, 0), 7).is_constant

    def test_affine1_constructor(self):
        a = affine1(coeff=3, offset=-1, level=1, depth=2)
        assert a == Affine((0, 3), -1)

    def test_affine1_bad_level(self):
        with pytest.raises(ValueError):
            affine1(level=2, depth=1)

    def test_str_rendering(self):
        assert str(Affine((1,), 0)) == "i"
        assert str(Affine((2,), 1)) == "2*i+1"
        assert str(Affine((0,), 5)) == "5"
        assert str(Affine((-1,), 3)) == "-1*i+3"


class TestTypingRules:
    def test_binop_promotion(self):
        e = BinOp(BinOpKind.ADD, Const(1.0, DType.F32), Const(2, DType.I32))
        assert e.dtype is DType.F32

    def test_int_only_op_rejects_float(self):
        with pytest.raises(TypeError):
            BinOp(BinOpKind.AND, Const(1.0, DType.F32), Const(1, DType.I32))

    def test_shift_requires_ints(self):
        e = BinOp(BinOpKind.SHL, Const(1, DType.I32), Const(2, DType.I32))
        assert e.dtype is DType.I32

    def test_compare_is_bool(self):
        e = Compare(CmpKind.LT, Const(1.0, DType.F32), Const(2.0, DType.F32))
        assert e.dtype is DType.BOOL

    def test_select_requires_bool_cond(self):
        cond = Compare(CmpKind.GT, Const(1.0, DType.F32), Const(0.0, DType.F32))
        sel = Select(cond, Const(1.0, DType.F32), Const(0.0, DType.F32))
        assert sel.dtype is DType.F32
        with pytest.raises(TypeError):
            Select(Const(1.0, DType.F32), Const(1.0, DType.F32), Const(0.0, DType.F32))

    def test_sqrt_requires_float(self):
        with pytest.raises(TypeError):
            UnOp(UnOpKind.SQRT, Const(1, DType.I32))

    def test_not_requires_bool(self):
        with pytest.raises(TypeError):
            UnOp(UnOpKind.NOT, Const(1, DType.I32))

    def test_convert_changes_dtype(self):
        e = Convert(Const(1, DType.I32), DType.F64)
        assert e.dtype is DType.F64


class TestTraversal:
    def test_walk_preorder(self):
        ld = Load("a", (Affine((1,), 0),), DType.F32)
        e = BinOp(BinOpKind.MUL, ld, Const(2.0, DType.F32))
        nodes = list(e.walk())
        assert nodes[0] is e
        assert ld in nodes
        assert len(nodes) == 3

    def test_loads_iterator(self):
        ld1 = Load("a", (Affine((1,), 0),), DType.F32)
        ld2 = Load("b", (Affine((1,), 1),), DType.F32)
        e = BinOp(BinOpKind.ADD, ld1, ld2)
        assert {x.array for x in e.loads()} == {"a", "b"}

    def test_structural_equality_for_cse(self):
        a1 = Load("a", (Affine((1,), 0),), DType.F32)
        a2 = Load("a", (Affine((1,), 0),), DType.F32)
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != Load("a", (Affine((1,), 1),), DType.F32)


class TestIndirect:
    def test_str(self):
        ix = Indirect("ip", Affine((1,), 0))
        assert str(ix) == "ip[i]"

    def test_load_str(self):
        ld = Load("b", (Indirect("ip", Affine((1,), 0)),), DType.F32)
        assert str(ld) == "b[ip[i]]"


class TestMisc:
    def test_iter_value_str(self):
        assert str(IterValue(0)) == "i"
        assert str(IterValue(1)) == "j"

    def test_scalar_ref(self):
        s = ScalarRef("alpha", DType.F64)
        assert s.dtype is DType.F64
        assert str(s) == "alpha"

    def test_minmax_str(self):
        e = BinOp(BinOpKind.MIN, Const(1.0, DType.F32), Const(2.0, DType.F32))
        assert str(e).startswith("min(")
