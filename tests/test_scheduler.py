"""Suite scheduler and engine-memo tests."""

import numpy as np
import pytest

from repro.costmodel import RatedSpeedupModel, SpeedupModel
from repro.experiments import (
    ARM_LLV,
    X86_SLP,
    build_dataset,
    clear_engine_cache,
    engine_cache_disabled,
    engine_cache_info,
    fit_cached,
    loocv_cached,
    run_suite,
    seed_mode,
)
from repro.experiments.scheduler import (
    SPEC_REQUIREMENTS,
    default_jobs,
    normalize_ids,
    required_specs,
)
from repro.experiments.registry import EXPERIMENTS, EXPLICIT_ONLY
from repro.fitting import LeastSquares, NonNegativeLeastSquares

#: A cheap cross-section: ARM drivers, an x86 driver, a shared-fit
#: driver (E2) — enough to exercise ordering, sharing, and parallelism
#: without paying for the full suite in every test.
FAST_IDS = ["E1", "E2", "E3", "E9"]


@pytest.fixture(autouse=True)
def _fresh_engine():
    clear_engine_cache()
    yield
    clear_engine_cache()


class TestNormalizeIds:
    def test_all_is_registry_order(self):
        default = [e for e in EXPERIMENTS if e not in EXPLICIT_ONLY]
        assert normalize_ids(None) == default
        assert normalize_ids(["all"]) == default

    def test_explicit_only_runs_when_named(self):
        assert "E13" in EXPLICIT_ONLY
        assert "E13" not in normalize_ids(["all"])
        assert normalize_ids(["E13"]) == ["E13"]

    def test_dedupe_and_registry_order(self):
        assert normalize_ids(["e9", "E1", "E9", "e1"]) == ["E1", "E9"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            normalize_ids(["E42"])

    def test_every_registered_experiment_has_spec_requirements(self):
        assert set(SPEC_REQUIREMENTS) == set(EXPERIMENTS)

    def test_required_specs(self):
        assert required_specs(["E1", "E3"]) == [ARM_LLV]
        assert required_specs(["E9"]) == [X86_SLP]
        assert required_specs(["E1", "E12"]) == [ARM_LLV, X86_SLP]

    def test_default_jobs_bounded_by_tasks(self):
        assert default_jobs(1) == 1
        assert 1 <= default_jobs(12) <= 12


class TestRunSuite:
    def test_results_in_registry_order(self):
        run = run_suite(FAST_IDS, parallel=True)
        assert [r.id for r in run.results] == FAST_IDS

    def test_parallel_serial_tables_identical(self):
        par = run_suite(FAST_IDS, parallel=True, jobs=4)
        clear_engine_cache()
        ser = run_suite(FAST_IDS, parallel=False)
        assert par.tables_text() == ser.tables_text()

    def test_engine_tables_match_seed_path(self):
        """The engine must not change a paper experiment's table."""
        engine = run_suite(FAST_IDS, parallel=True)
        with seed_mode():
            seed = run_suite(FAST_IDS, parallel=False)
        assert engine.tables_text() == seed.tables_text()

    def test_wall_times_recorded(self):
        run = run_suite(["E1", "E2"], parallel=False)
        assert set(run.wall_by_id) == {"E1", "E2"}
        assert all(w >= 0.0 for w in run.wall_by_id.values())
        assert run.total_s >= run.drivers_s
        assert run.mode == "serial" and run.jobs == 1

    def test_single_experiment_runs_serial(self):
        run = run_suite(["E1"], parallel=True)
        assert run.mode == "serial"


class TestEngineMemo:
    def test_fit_cached_shares_the_fitted_instance(self):
        samples = build_dataset(ARM_LLV).samples
        a = fit_cached(SpeedupModel(NonNegativeLeastSquares()), samples)
        b = fit_cached(SpeedupModel(NonNegativeLeastSquares()), samples)
        assert a is b
        info = engine_cache_info()
        assert info["hits"] >= 1

    def test_loocv_cached_returns_equal_copies(self):
        samples = build_dataset(ARM_LLV).samples[:30]

        def factory():
            return RatedSpeedupModel(LeastSquares())

        p1 = loocv_cached(factory, samples)
        p2 = loocv_cached(factory, samples)
        assert p1 is not p2  # callers own their vector
        np.testing.assert_array_equal(p1, p2)
        p1[0] = -1.0  # mutating a copy must not poison the memo
        np.testing.assert_array_equal(loocv_cached(factory, samples), p2)

    def test_memo_keys_on_dataset_content(self):
        samples = build_dataset(ARM_LLV).samples[:20]
        jittered = [s.with_speedup(s.measured_speedup * 1.01) for s in samples]

        def factory():
            return RatedSpeedupModel(LeastSquares())

        base = loocv_cached(factory, samples)
        other = loocv_cached(factory, jittered)
        assert not np.array_equal(base, other)

    def test_disabled_context_skips_the_memo(self):
        samples = build_dataset(ARM_LLV).samples
        with engine_cache_disabled():
            a = fit_cached(SpeedupModel(LeastSquares()), samples)
            b = fit_cached(SpeedupModel(LeastSquares()), samples)
            assert a is not b
        assert engine_cache_info()["entries"] == 0
