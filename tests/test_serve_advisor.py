"""Advisor request path: verdicts, fallbacks, breakers, bit-identity."""

import numpy as np
import pytest

from repro.costmodel.speedup import SpeedupModel
from repro.fitting.nnls import NonNegativeLeastSquares
from repro.serve import (
    Advisor,
    InvalidRequest,
    ModelRegistry,
    canonical_verdict,
    entry_from_model,
    verdict_core,
)

SAXPY = """
kernel saxpy {
    f32 a[256], b[256];
    f32 alpha = 2.0;
    for (i = 0; i < 256; i++) {
        a[i] = a[i] + alpha * b[i];
    }
}
"""

GUARDED = """
kernel guarded {
    f32 a[128], b[128];
    for (i = 0; i < 128; i++) {
        if (b[i] > 0.0) { a[i] = b[i]; } else { a[i] = 0.0 - b[i]; }
    }
}
"""


@pytest.fixture
def advisor(tmp_path):
    return Advisor(ModelRegistry(tmp_path / "registry"))


def publish_model(advisor):
    """Fit a model on real measured kernels and publish it."""
    from repro.serve.chaos import bootstrap_registry, suite_payloads

    selected = suite_payloads(10)
    return bootstrap_registry(
        advisor.registry,
        [s for _, _, s in selected],
        target="armv8-neon",
        vectorizer="llv",
    )


def test_static_fallback_when_no_model(advisor):
    resp = advisor.advise({"kernel": SAXPY})
    assert resp["kernel"] == "saxpy"
    assert resp["target"] == "armv8-neon"
    assert resp["model"] == "llvm-static"
    assert resp["predicted_speedup"] == resp["reference_speedup"]
    assert isinstance(resp["vectorized"], bool)
    assert any("no fitted model" in d for d in resp["degraded"])
    serve_remarks = [r for r in resp["remarks"] if r["pass"] == "serve"]
    assert len(serve_remarks) == 1
    assert serve_remarks[0]["flag"] == "-Rpass-missed"


def test_published_model_answers_with_its_version(advisor):
    entry = publish_model(advisor)
    resp = advisor.advise({"kernel": SAXPY})
    assert resp["model"] == entry.version
    assert resp["predicted_speedup"] > 0
    assert not any("no fitted model" in d for d in resp["degraded"])


def test_ir_envelope_matches_dsl_form(advisor):
    from repro.frontend import parse_kernel
    from repro.ir.printer import kernel_to_source

    kern = parse_kernel(SAXPY)
    body = "\n".join(
        ln
        for ln in kernel_to_source(kern).splitlines()
        if not ln.startswith("//")
    )
    via_ir = advisor.advise({"ir": {"name": "saxpy", "body": body}})
    via_dsl = advisor.advise({"kernel": SAXPY})
    assert canonical_verdict(via_ir) == canonical_verdict(via_dsl)


@pytest.mark.parametrize(
    "payload, match",
    [
        ({}, "needs a 'kernel'"),
        ({"kernel": "kernel x { not valid }"}, "does not parse"),
        ({"kernel": 42}, "DSL source"),
        ({"ir": {"name": "x"}}, "'ir' must be"),
        ({"ir": {"name": "bad name", "body": ""}}, "identifier"),
        ({"kernel": SAXPY, "target": "vax"}, "unknown target"),
        ({"kernel": SAXPY, "vectorizer": "magic"}, "unknown vectorizer"),
        ({"kernel": SAXPY, "vf": "wide"}, "integer"),
        ({"kernel": SAXPY, "vf": 1}, r"\[2, 64\]"),
    ],
)
def test_invalid_requests_raise_invalid_request(advisor, payload, match):
    with pytest.raises(InvalidRequest, match=match):
        advisor.advise(payload)


def test_client_errors_do_not_move_breakers(advisor):
    for _ in range(5):
        with pytest.raises(InvalidRequest):
            advisor.advise({"kernel": "kernel x { not valid }"})
    assert advisor.native_breaker.state == "closed"
    assert advisor.prepass_breaker.state == "closed"


def test_verdict_is_deterministic(advisor):
    a = advisor.advise({"kernel": GUARDED})
    b = advisor.advise({"kernel": GUARDED})
    assert canonical_verdict(a) == canonical_verdict(b)


def test_native_breaker_open_demotes_but_preserves_verdict(advisor):
    healthy = advisor.advise({"kernel": GUARDED})
    advisor.native_breaker.force_open()
    demoted = advisor.advise({"kernel": GUARDED})
    assert any("interpreter tier" in d for d in demoted["degraded"])
    # Demotion changes the tier, never the floats.
    assert canonical_verdict(demoted) == canonical_verdict(healthy)


def test_toolchain_loss_fault_trips_breaker_eventually(advisor):
    healthy = advisor.advise({"kernel": GUARDED})
    for _ in range(3):
        faulted = advisor.advise(
            {"kernel": GUARDED}, inject={"toolchain_loss"}
        )
        assert canonical_verdict(faulted) == canonical_verdict(healthy)
    assert advisor.native_breaker.state == "open"
    assert advisor.native_breaker.stats()["trips"] == 1


def test_prepass_breaker_open_skips_analysis_with_remark(advisor):
    advisor.prepass_breaker.force_open()
    resp = advisor.advise({"kernel": SAXPY})
    assert any("prepass skipped" in d for d in resp["degraded"])
    serve_remarks = [r for r in resp["remarks"] if r["pass"] == "serve"]
    assert len(serve_remarks) == 1


def test_prepass_internal_fault_counts_against_breaker(advisor, monkeypatch):
    import repro.serve.advisor as advisor_mod

    def boom(kernel):
        raise RuntimeError("analysis exploded")

    monkeypatch.setattr(advisor_mod, "verify_kernel", boom)
    resp = advisor.advise({"kernel": SAXPY})
    assert any("prepass faulted" in d for d in resp["degraded"])
    assert advisor.prepass_breaker.stats()["consecutive_failures"] == 1


def test_unvectorizable_kernel_gets_failure_verdict(advisor):
    # A loop-carried recurrence at distance 1 defeats the vectorizer.
    src = """
    kernel recur {
        f32 a[257];
        for (i = 0; i < 256; i++) {
            a[i + 1] = a[i] + 1.0;
        }
    }
    """
    resp = advisor.advise({"kernel": src})
    assert resp["vectorized"] is False
    assert resp["predicted_speedup"] is None
    assert resp["reason"]
    assert any(
        r["pass"] == "loop-vectorize" and r["flag"] == "-Rpass-missed"
        for r in resp["remarks"]
    )


def test_verdict_core_fields(advisor):
    resp = advisor.advise({"kernel": SAXPY})
    core = verdict_core(resp)
    assert set(core) == {
        "kernel",
        "target",
        "vectorizer",
        "vf",
        "vectorized",
        "predicted_speedup",
        "reference_speedup",
        "model",
    }
    # Metadata stays out of the parity surface.
    assert "remarks" not in core and "degraded" not in core


def test_health_reports_breakers_registry_and_counters(advisor):
    advisor.advise({"kernel": SAXPY})
    health = advisor.health()
    assert health["status"] == "ok"
    names = {b["name"] for b in health["breakers"]}
    assert names == {"native", "prepass"}
    assert health["advisor"]["requests"] == 1
    assert health["advisor"]["verdicts"] == 1
