"""Fitting backend tests, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fitting import (
    FitError,
    LeastSquares,
    LinearSVR,
    NonNegativeLeastSquares,
    ScaledRegressor,
    StandardScaler,
    make_regressor,
    nnls_warm_start,
    residual_norm,
)


def synthetic(n=60, d=6, seed=0, noise=0.0, nonneg=False):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 4, size=(n, d))
    w = rng.uniform(0.2, 2.0, size=d) if nonneg else rng.normal(0, 1, size=d)
    y = X @ w + noise * rng.normal(size=n)
    return X, y, w


class TestLeastSquares:
    def test_exact_recovery(self):
        X, y, w = synthetic()
        reg = LeastSquares().fit(X, y)
        np.testing.assert_allclose(reg.coef_, w, rtol=1e-8)

    def test_predict(self):
        X, y, _ = synthetic()
        reg = LeastSquares().fit(X, y)
        np.testing.assert_allclose(reg.predict(X), y, rtol=1e-8)

    def test_ridge_stabilizes_collinear(self):
        X, y, _ = synthetic(d=3)
        Xc = np.hstack([X, X[:, :1]])  # duplicate column
        reg = LeastSquares(ridge=1e-6).fit(Xc, y)
        assert np.all(np.isfinite(reg.coef_))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LeastSquares().predict(np.ones((2, 2)))


class TestNNLS:
    def test_nonnegative_coefficients(self):
        X, y, _ = synthetic(nonneg=False)  # true weights partly negative
        reg = NonNegativeLeastSquares().fit(X, y)
        assert (reg.coef_ >= 0).all()

    def test_recovers_nonneg_truth(self):
        X, y, w = synthetic(nonneg=True)
        reg = NonNegativeLeastSquares().fit(X, y)
        np.testing.assert_allclose(reg.coef_, w, rtol=1e-6)

    def test_l2_residual_never_worse(self):
        X, y, _ = synthetic(nonneg=False, noise=0.5)
        l2 = LeastSquares().fit(X, y)
        nnls = NonNegativeLeastSquares().fit(X, y)
        assert residual_norm(l2, X, y) <= residual_norm(nnls, X, y) + 1e-12

    def test_support_is_positive_coefs(self):
        X, y, _ = synthetic(nonneg=False, noise=0.5)
        reg = NonNegativeLeastSquares().fit(X, y)
        assert np.array_equal(reg.support_, np.nonzero(reg.coef_ > 0)[0])


class TestWarmStart:
    def test_correct_guess_reproduces_optimum(self):
        X, y, _ = synthetic(nonneg=False, noise=0.5)
        reg = NonNegativeLeastSquares().fit(X, y)
        w = nnls_warm_start(X, y, reg.support_)
        assert w is not None
        np.testing.assert_allclose(w, reg.coef_, rtol=1e-8, atol=1e-10)

    def test_wrong_guess_is_refused(self):
        """A support whose restricted solution violates dual feasibility
        must return None rather than a silently suboptimal fit."""
        X, y, _ = synthetic(nonneg=True, noise=0.0)
        # Empty support on data with strictly positive truth: the zero
        # vector has a strongly negative gradient everywhere.
        assert nnls_warm_start(X, y, np.array([], dtype=np.intp)) is None

    def test_empty_support_accepted_when_zero_is_optimal(self):
        X, y, _ = synthetic(nonneg=True, noise=0.0)
        w = nnls_warm_start(X, -y, np.array([], dtype=np.intp))
        assert w is not None
        np.testing.assert_allclose(w, 0.0)

    def test_out_of_range_support_raises(self):
        X, y, _ = synthetic()
        with pytest.raises(FitError):
            nnls_warm_start(X, y, np.array([X.shape[1]]))

    def test_never_returns_suboptimal(self):
        """Whatever support is guessed, a certified answer matches the
        cold solver's objective."""
        import scipy.optimize

        X, y, _ = synthetic(nonneg=False, noise=1.0, seed=7)
        _, rnorm_cold = scipy.optimize.nnls(X, y)
        rng = np.random.default_rng(0)
        for _ in range(20):
            support = np.nonzero(rng.random(X.shape[1]) < 0.5)[0]
            w = nnls_warm_start(X, y, support)
            if w is None:
                continue
            assert (w >= 0).all()
            rnorm = float(np.linalg.norm(X @ w - y))
            assert rnorm <= rnorm_cold + 1e-9 * (1.0 + rnorm_cold)


class TestSVR:
    def test_recovers_clean_linear(self):
        X, y, w = synthetic(noise=0.0)
        reg = LinearSVR(C=100.0, epsilon=0.01).fit(X, y)
        np.testing.assert_allclose(reg.coef_, w, atol=0.05)

    def test_robust_to_outliers(self):
        X, y, w = synthetic(n=80, noise=0.0)
        y_out = y.copy()
        y_out[:4] += 50.0  # gross outliers
        svr = LinearSVR(C=1.0, epsilon=0.1).fit(X, y_out)
        l2 = LeastSquares().fit(X, y_out)
        svr_err = np.linalg.norm(svr.coef_ - w)
        l2_err = np.linalg.norm(l2.coef_ - w)
        assert svr_err < l2_err

    def test_nonneg_bounds(self):
        X, y, _ = synthetic()
        reg = LinearSVR(nonneg=True).fit(X, y)
        assert (reg.coef_ >= -1e-12).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LinearSVR(C=0)
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-1)

    def test_scale_invariance(self):
        """Column scaling must not change predictions (w rescales)."""
        X, y, _ = synthetic(noise=0.1)
        reg1 = LinearSVR().fit(X, y)
        scale = np.array([1.0, 10.0, 100.0, 0.1, 5.0, 1.0])
        reg2 = LinearSVR().fit(X * scale, y)
        np.testing.assert_allclose(
            reg1.predict(X), reg2.predict(X * scale), rtol=1e-2, atol=1e-2
        )


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(FitError):
            LeastSquares().fit(np.ones(3), np.ones(3))
        with pytest.raises(FitError):
            LeastSquares().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(FitError):
            LeastSquares().fit(np.ones((0, 2)), np.ones(0))

    def test_nonfinite_rejected(self):
        X = np.ones((3, 2))
        y = np.array([1.0, np.nan, 2.0])
        with pytest.raises(FitError):
            LeastSquares().fit(X, y)


class TestScaler:
    def test_standardizes(self):
        X = np.random.default_rng(0).normal(5, 3, size=(100, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1, atol=1e-10)

    def test_constant_column_safe(self):
        X = np.ones((10, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_scaled_regressor_roundtrip(self):
        X, y, _ = synthetic()
        reg = ScaledRegressor(LeastSquares(), with_mean=False).fit(X, y)
        np.testing.assert_allclose(reg.predict(X), y, rtol=1e-6)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("l2", LeastSquares),
        ("L2", LeastSquares),
        ("nnls", NonNegativeLeastSquares),
        ("svr", LinearSVR),
    ])
    def test_names(self, name, cls):
        assert isinstance(make_regressor(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_regressor("xgboost")


# -- property-based tests ------------------------------------------------------


@st.composite
def regression_problem(draw):
    n = draw(st.integers(min_value=8, max_value=40))
    d = draw(st.integers(min_value=1, max_value=6))
    X = draw(
        arrays(
            np.float64,
            (n, d),
            elements=st.floats(0.0, 10.0, allow_nan=False),
        )
    )
    w = draw(
        arrays(
            np.float64,
            (d,),
            elements=st.floats(-3.0, 3.0, allow_nan=False),
        )
    )
    return X, w


@given(regression_problem())
@settings(max_examples=40, deadline=None)
def test_l2_residual_is_minimal(problem):
    """No weight vector beats the least-squares solution."""
    X, w_true = problem
    rng = np.random.default_rng(0)
    y = X @ w_true + rng.normal(0, 0.1, size=len(X))
    reg = LeastSquares().fit(X, y)
    base = residual_norm(reg, X, y)
    for _ in range(5):
        w_alt = reg.coef_ + rng.normal(0, 0.1, size=len(reg.coef_))
        alt = np.sqrt(np.mean((X @ w_alt - y) ** 2))
        assert alt >= base - 1e-9


@given(regression_problem())
@settings(max_examples=40, deadline=None)
def test_nnls_always_nonnegative(problem):
    X, w_true = problem
    y = X @ w_true
    reg = NonNegativeLeastSquares().fit(X, y)
    assert (reg.coef_ >= 0).all()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_exact_interpolation_of_linear_truth(seed):
    """All three fitters recover a non-negative linear ground truth."""
    X, y, w = synthetic(seed=seed, nonneg=True)
    for reg in (LeastSquares(), NonNegativeLeastSquares(), LinearSVR(C=100, epsilon=0.01)):
        reg.fit(X, y)
        np.testing.assert_allclose(reg.predict(X), y, atol=0.2)
