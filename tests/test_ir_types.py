"""Unit tests for repro.ir.types."""

import pytest

from repro.ir.types import DType, VecType, common_type, lanes_for


class TestDType:
    @pytest.mark.parametrize(
        "dtype,size",
        [
            (DType.F32, 4),
            (DType.F64, 8),
            (DType.I32, 4),
            (DType.I64, 8),
            (DType.BOOL, 1),
        ],
    )
    def test_sizes(self, dtype, size):
        assert dtype.size == size

    def test_float_predicate(self):
        assert DType.F32.is_float and DType.F64.is_float
        assert not DType.I32.is_float and not DType.BOOL.is_float

    def test_int_predicate(self):
        assert DType.I32.is_int and DType.I64.is_int
        assert not DType.F32.is_int and not DType.BOOL.is_int

    def test_bool_predicate(self):
        assert DType.BOOL.is_bool
        assert not DType.F32.is_bool


class TestVecType:
    def test_bits_and_size(self):
        v = VecType(DType.F32, 4)
        assert v.bits == 128
        assert v.size == 16

    def test_str(self):
        assert str(VecType(DType.F64, 2)) == "<2 x f64>"

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            VecType(DType.F32, 0)


class TestLanesFor:
    @pytest.mark.parametrize(
        "dtype,bits,lanes",
        [
            (DType.F32, 128, 4),
            (DType.F32, 256, 8),
            (DType.F64, 128, 2),
            (DType.F64, 256, 4),
            (DType.I32, 128, 4),
        ],
    )
    def test_full_register(self, dtype, bits, lanes):
        assert lanes_for(dtype, bits) == lanes

    def test_non_divisible_raises(self):
        with pytest.raises(ValueError):
            lanes_for(DType.F64, 100)


class TestCommonType:
    def test_identity(self):
        assert common_type(DType.F32, DType.F32) is DType.F32

    def test_float_beats_int(self):
        assert common_type(DType.F32, DType.I32) is DType.F32
        assert common_type(DType.I64, DType.F32) is DType.F32

    def test_wider_float_wins(self):
        assert common_type(DType.F32, DType.F64) is DType.F64

    def test_wider_int_wins(self):
        assert common_type(DType.I32, DType.I64) is DType.I64

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            common_type(DType.BOOL, DType.F32)
