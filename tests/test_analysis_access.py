"""Access-pattern classification tests."""

import pytest

from repro.analysis.access import (
    AccessPattern,
    classify_stride,
    collect_accesses,
    dim_strides,
    linearize,
)
from repro.ir import DType
from repro.ir.kernel import ArrayDecl

from tests.helpers import build


class TestStrideClassification:
    @pytest.mark.parametrize(
        "stride,pattern",
        [
            (1, AccessPattern.CONTIGUOUS),
            (-1, AccessPattern.REVERSE),
            (2, AccessPattern.STRIDED),
            (-5, AccessPattern.STRIDED),
            (0, AccessPattern.INVARIANT),
            (None, AccessPattern.INDIRECT),
        ],
    )
    def test_classify(self, stride, pattern):
        assert classify_stride(stride) is pattern


class TestDimStrides:
    def test_1d(self):
        assert dim_strides(ArrayDecl("a", DType.F32, (100,))) == (1,)

    def test_2d_row_major(self):
        assert dim_strides(ArrayDecl("aa", DType.F32, (16, 32))) == (32, 1)

    def test_3d(self):
        assert dim_strides(ArrayDecl("t", DType.F32, (4, 5, 6))) == (30, 6, 1)


class TestLinearize:
    def test_2d_row_access(self):
        def body(k):
            aa = k.array2("aa")
            i = k.loop(16)
            j = k.loop(16)
            aa[i, j] = aa[i - 1, j + 2] * 2.0

        kern = build("t", body)
        (ld,) = list(kern.loads())
        lin = linearize(kern.arrays["aa"], ld.subscript, 2)
        assert lin.coeffs == (256, 1)
        assert lin.offset == -256 + 2

    def test_indirect_linearize_is_none(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(16)
            a[i] = b[ip[i]]

        kern = build("t", body)
        ld = [x for x in kern.loads() if x.array == "b"][0]
        assert linearize(kern.arrays["b"], ld.subscript, 1) is None


class TestCollectAccesses:
    def test_positions_loads_before_store(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(16)
            a[i] = b[i] + 1.0

        accs = collect_accesses(build("t", body))
        load = next(a for a in accs if a.array == "b")
        store = next(a for a in accs if a.is_store)
        assert load.pos < store.pos

    def test_column_access_is_strided(self):
        def body(k):
            aa = k.array2("aa")
            i = k.loop(16)
            j = k.loop(16)
            aa[j, i] = 1.0  # inner loop j walks rows -> stride = row size

        accs = collect_accesses(build("t", body))
        store = next(a for a in accs if a.is_store)
        assert store.pattern is AccessPattern.STRIDED
        assert store.stride == 256

    def test_guard_depth_recorded(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(16)
            with k.if_(b[i] > 0.0):
                a[i] = 1.0

        accs = collect_accesses(build("t", body))
        store = next(a for a in accs if a.is_store)
        cond_load = next(a for a in accs if a.array == "b")
        assert store.guard_depth == 1
        assert cond_load.guard_depth == 0

    def test_indirect_index_array_counted_as_load(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(16)
            a[i] = b[ip[i]]

        accs = collect_accesses(build("t", body))
        arrays = {a.array for a in accs}
        assert "ip" in arrays
        ip_access = next(a for a in accs if a.array == "ip")
        assert ip_access.pattern is AccessPattern.CONTIGUOUS

    def test_invariant_load(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(16)
            a[i] = b[3]

        accs = collect_accesses(build("t", body))
        ld = next(a for a in accs if a.array == "b")
        assert ld.pattern is AccessPattern.INVARIANT

    def test_scatter_store(self):
        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(16)
            a[ip[i]] = b[i]

        accs = collect_accesses(build("t", body))
        store = next(a for a in accs if a.is_store)
        assert store.pattern is AccessPattern.INDIRECT
        assert store.stride is None
