"""The ``repro.experiments analyze`` CLI and its acceptance contract."""

import json

import pytest

from repro.experiments.analyze import analyze_kernel, main
from repro.targets import ARMV8_NEON
from repro.tsvc import all_kernels
from repro.vectorize import check_legality, natural_vf


class TestCli:
    def test_single_kernel_prints_remark(self, capsys):
        assert main(["s000"]) == 0
        out = capsys.readouterr().out
        assert "loop vectorized" in out
        assert "[-Rpass=loop-vectorize]" in out
        assert "1 vectorized" in out

    def test_rejected_kernel_names_dependence(self, capsys):
        assert main(["s211"]) == 0
        out = capsys.readouterr().out
        assert "loop not vectorized" in out
        assert "store b[i+1]" in out and "load b[i]" in out
        assert "[-Rpass=race-detector]" in out

    def test_unknown_kernel_exits_2(self, capsys):
        assert main(["definitely-not-a-kernel"]) == 2
        assert "unknown kernels" in capsys.readouterr().err

    def test_no_args_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_vf_override_changes_verdict(self):
        # distance-4 dep: legal at VF 4, illegal at VF 8 (s1115-style).
        ok = analyze_kernel("s000", vf=4)
        assert ok["vectorized"] is True and ok["vf"] == 4

    def test_json_report(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        assert main(["s000", "s211", "--json", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert report["summary"]["analyzed"] == 2
        assert report["summary"]["vectorized"] == 1
        by_name = {e["kernel"]: e for e in report["kernels"]}
        assert by_name["s000"]["vectorized"] is True
        s211 = by_name["s211"]
        assert s211["vectorized"] is False
        args = [r["args"] for r in s211["remarks"] if r["pass"] == "race-detector"]
        assert args and args[0]["array"] == "b"
        assert args[0]["src"] == "store b[i+1]"
        assert args[0]["distance"] == "1"

    def test_strict_flag_passes_clean_suite(self, capsys):
        assert main(["--suite", "--strict", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 warnings, 0 errors" in out

    def test_main_module_dispatch(self, capsys):
        from repro.experiments.__main__ import main as top_main

        assert top_main(["analyze", "s000", "--quiet"]) == 0
        assert "1 vectorized" in capsys.readouterr().out


class TestAcceptance:
    def test_every_rejected_kernel_gets_a_named_remark(self):
        """Each legality-rejected suite kernel must carry >=1 remark that
        names the blocking dependence pair or the recurrence scalar."""
        missing = []
        for kern in all_kernels():
            vf = natural_vf(kern, ARMV8_NEON)
            if check_legality(kern, vf).ok:
                continue
            entry = analyze_kernel(kern.name)
            remarks = [
                r
                for r in entry["remarks"]
                if r["pass"] in ("loop-vectorize", "race-detector")
                and (
                    "array" in r["args"]
                    or "scalar" in r["args"]
                    or "src" in r["args"]
                )
            ]
            if not remarks:
                missing.append(kern.name)
        assert missing == [], (
            f"rejected kernels without a blocking-pair remark: {missing}"
        )

    def test_rejection_remarks_name_both_endpoints(self):
        entry = analyze_kernel("s116")
        pair = [r for r in entry["remarks"] if r["pass"] == "race-detector"]
        assert pair, "s116 should have race remarks"
        args = pair[0]["args"]
        assert "store" in args["src"] or "load" in args["src"]
        assert args["src_stmt"].isdigit() and args["sink_stmt"].isdigit()
        assert "direction" in args and "distance" in args
