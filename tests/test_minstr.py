"""Machine-instruction stream container tests."""

import pytest

from repro.codegen.lowering import CACHE_LINE, access_traffic
from repro.codegen.minstr import MInstr, StreamBuilder
from repro.ir.types import DType
from repro.targets.classes import IClass


class TestAccessTraffic:
    def test_contiguous(self):
        assert access_traffic(4, 1) == 4
        assert access_traffic(8, -1) == 8

    def test_invariant(self):
        assert access_traffic(4, 0) == 4

    def test_strided_scales_until_line(self):
        assert access_traffic(4, 2) == 8
        assert access_traffic(4, 8) == 32
        assert access_traffic(4, 100) == CACHE_LINE

    def test_indirect(self):
        assert access_traffic(4, None) == CACHE_LINE // 4


class TestStreamBuilder:
    def test_ids_sequential_across_sections(self):
        b = StreamBuilder("t")
        i0 = b.emit(IClass.LOAD, DType.F32)
        b.in_prologue()
        i1 = b.emit(IClass.BROADCAST, DType.F32)
        b.in_epilogue()
        i2 = b.emit(IClass.REDUCE, DType.F32)
        assert (i0, i1, i2) == (0, 1, 2)

    def test_sections_routed(self):
        b = StreamBuilder("t")
        b.in_prologue()
        b.emit(IClass.BROADCAST, DType.F32)
        b.in_body()
        b.emit(IClass.ADD, DType.F32)
        b.in_epilogue()
        b.emit(IClass.REDUCE, DType.F32)
        s = b.stream
        assert len(s.prologue) == len(s.body) == len(s.epilogue) == 1

    def test_none_srcs_filtered(self):
        b = StreamBuilder("t")
        rid = b.emit(IClass.ADD, DType.F32, srcs=(None, 0, None))
        assert b.find(rid).srcs == (0,)

    def test_find_and_add_carried(self):
        b = StreamBuilder("t")
        rid = b.emit(IClass.ADD, DType.F32)
        b.add_carried(rid, rid, 2)
        assert b.find(rid).carried == ((rid, 2),)
        assert b.find(999) is None


class TestStreamQueries:
    def _stream(self):
        b = StreamBuilder("t")
        b.in_prologue()
        b.emit(IClass.BROADCAST, DType.F32, lanes=4)
        b.in_body()
        b.emit(IClass.LOAD, DType.F32, lanes=4, mem_array="a", mem_stride=4)
        b.emit(IClass.FMA, DType.F32, lanes=4, weight=0.5)
        b.in_epilogue()
        b.emit(IClass.REDUCE, DType.F32, lanes=4)
        s = b.stream
        s.iters = 10
        s.elems_per_iter = 4
        return s

    def test_counts_amortization(self):
        counts = self._stream().counts()
        assert counts[IClass.BROADCAST] == pytest.approx(0.1)
        assert counts[IClass.REDUCE] == pytest.approx(0.1)
        assert counts[IClass.FMA] == pytest.approx(0.5)

    def test_counts_without_overhead(self):
        counts = self._stream().counts(include_overhead=False)
        assert IClass.BROADCAST not in counts

    def test_all_instrs_order(self):
        s = self._stream()
        classes = [i.iclass for i in s.all_instrs()]
        assert classes[0] is IClass.BROADCAST
        assert classes[-1] is IClass.REDUCE

    def test_size_counts_body_only(self):
        assert self._stream().size() == 2

    def test_dump_sections(self):
        text = self._stream().dump()
        for section in ("prologue:", "body:", "epilogue:"):
            assert section in text

    def test_instr_str(self):
        ins = MInstr(
            id=3,
            iclass=IClass.FMA,
            dtype=DType.F32,
            lanes=4,
            srcs=(1, 2),
            carried=((3, 1),),
            weight=0.5,
            note="acc",
        )
        text = str(ins)
        assert "%3 = fma.v4.f32" in text
        assert "(1,2)" in text
        assert "^3@1" in text
        assert "w=0.50" in text
        assert "acc" in text

    def test_is_vector_and_memory(self):
        ld = MInstr(0, IClass.LOAD, DType.F32, 4)
        add = MInstr(1, IClass.ADD, DType.F32, 1)
        assert ld.is_vector and ld.is_memory
        assert not add.is_vector and not add.is_memory


class TestGroupTraffic:
    def _mk(self, specs):
        b = StreamBuilder("t")
        for iclass, array, stride, traffic in specs:
            b.emit(
                iclass,
                DType.F32,
                mem_array=array,
                mem_stride=stride,
                traffic=traffic,
            )
        return b.stream

    def test_single_contiguous(self):
        s = self._mk([(IClass.LOAD, "a", 1, 4)])
        assert s.bytes_per_iter() == pytest.approx(4.0)

    def test_unrolled_copies_share_window(self):
        s = self._mk([(IClass.LOAD, "a", 8, 4)] * 8)
        assert s.bytes_per_iter() == pytest.approx(32.0)  # 8 elems x 4B

    def test_sparse_strided_capped_by_lines(self):
        s = self._mk([(IClass.LOAD, "a", 10_000, 4)] * 2)
        assert s.bytes_per_iter() == pytest.approx(2 * 64)

    def test_direction_separates_groups(self):
        s = self._mk(
            [(IClass.LOAD, "a", 1, 4), (IClass.STORE, "a", 1, 4)]
        )
        assert s.bytes_per_iter() == pytest.approx(8.0)

    def test_ungrouped_instrs_use_traffic(self):
        s = self._mk([(IClass.GATHER, "", None, 128)])
        assert s.bytes_per_iter() == pytest.approx(128.0)

    def test_zero_stride_falls_back_to_traffic(self):
        s = self._mk([(IClass.BROADCAST, "a", 0, 4)])
        assert s.bytes_per_iter() == pytest.approx(4.0)
