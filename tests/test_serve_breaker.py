"""Circuit-breaker state machine: trips, probes, recovery, counters."""

import threading

import pytest

from repro.serve import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def mk(**kw):
    clock = FakeClock()
    kw.setdefault("failure_threshold", 3)
    kw.setdefault("recovery_time", 5.0)
    return CircuitBreaker("test", clock=clock, **kw), clock


def test_closed_allows_and_counts_consecutive_failures():
    b, _ = mk()
    assert b.state == CLOSED
    assert b.allow()
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED  # 2 < threshold
    b.record_success()  # success resets the streak
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED


def test_threshold_trips_open_and_rejects():
    b, _ = mk()
    for _ in range(3):
        b.record_failure()
    assert b.state == OPEN
    assert not b.allow()
    assert b.stats()["trips"] == 1
    assert b.stats()["rejections"] == 1


def test_half_open_after_recovery_time_bounds_probes():
    b, clock = mk()
    for _ in range(3):
        b.record_failure()
    clock.advance(4.9)
    assert not b.allow()  # still open
    clock.advance(0.2)
    assert b.state == HALF_OPEN
    assert b.allow()  # the single probe slot
    assert not b.allow()  # second caller is rejected


def test_probe_success_closes_and_counts_recovery():
    b, clock = mk()
    for _ in range(3):
        b.record_failure()
    clock.advance(5.0)
    assert b.allow()
    b.record_success()
    assert b.state == CLOSED
    assert b.allow()
    assert b.stats()["recoveries"] == 1


def test_probe_failure_reopens_and_rearms_timer():
    b, clock = mk()
    for _ in range(3):
        b.record_failure()
    clock.advance(5.0)
    assert b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert b.stats()["trips"] == 2
    clock.advance(4.0)
    assert not b.allow()  # timer restarted at the probe failure
    clock.advance(1.1)
    assert b.allow()


def test_force_open_and_force_close():
    b, _ = mk()
    b.force_open()
    assert b.state == OPEN and not b.allow()
    b.force_close()
    assert b.state == CLOSED and b.allow()


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("x", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("x", recovery_time=-1)
    with pytest.raises(ValueError):
        CircuitBreaker("x", half_open_probes=0)


def test_thread_safety_single_probe_under_contention():
    """Exactly one thread wins the half-open probe slot."""
    b, clock = mk()
    for _ in range(3):
        b.record_failure()
    clock.advance(5.0)
    wins = []
    barrier = threading.Barrier(8)

    def attempt():
        barrier.wait()
        if b.allow():
            wins.append(1)

    threads = [threading.Thread(target=attempt) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(wins) == 1
