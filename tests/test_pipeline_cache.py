"""Persistent measurement-cache semantics (repro.pipeline.cache)."""

import pickle

import numpy as np
import pytest

from repro.experiments import DatasetSpec
from repro.pipeline import (
    MISS,
    MeasurementCache,
    measure_suite,
    measurement_fingerprint,
)
from repro.tsvc import get_kernel

SPEC = DatasetSpec("armv8-neon", "llv", workers=1)


def fp_for(spec: DatasetSpec, name: str = "s000") -> str:
    return measurement_fingerprint(
        get_kernel(name), spec.target, spec.vectorizer, spec.jitter, spec.seed
    )


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_is_stable():
    assert fp_for(SPEC) == fp_for(SPEC)
    assert len(fp_for(SPEC)) == 64  # sha256 hex


@pytest.mark.parametrize(
    "other",
    [
        DatasetSpec("x86-avx2", "slp"),
        DatasetSpec("armv8-neon", "slp"),
        DatasetSpec("armv8-neon", "llv", jitter=0.5),
        DatasetSpec("armv8-neon", "llv", seed=7),
    ],
)
def test_fingerprint_invalidates_on_spec_change(other):
    assert fp_for(SPEC) != fp_for(other)


def test_fingerprint_differs_across_kernels():
    assert fp_for(SPEC, "s000") != fp_for(SPEC, "s111")


def test_workers_not_part_of_fingerprint():
    assert fp_for(SPEC) == fp_for(DatasetSpec("armv8-neon", "llv", workers=8))


# -- hit / miss / bypass -----------------------------------------------------


def test_roundtrip_hit(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fp = fp_for(SPEC)
    assert cache.get(fp) is MISS
    payload = (None, "some reason")
    cache.put(fp, payload)
    assert cache.get(fp) == payload
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.stores == 1


def test_bypass_reads_and_writes_nothing(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fp = fp_for(SPEC)
    cache.put(fp, (None, "cached"))

    bypass = MeasurementCache(root=tmp_path, enabled=False)
    assert bypass.get(fp) is MISS  # entry exists but is not read
    bypass.put(fp, (None, "clobbered"))
    assert bypass.stats.as_dict() == {
        "hits": 0,
        "misses": 0,
        "stores": 0,
        "corrupt": 0,
        "write_errors": 0,
    }
    assert cache.get(fp) == (None, "cached")  # and was not overwritten


def test_clear_and_len(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    for name in ("s000", "s111", "s112"):
        cache.put(fp_for(SPEC, name), (None, name))
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
    assert cache.get(fp_for(SPEC, "s000")) is MISS


# -- corruption safety -------------------------------------------------------


def test_truncated_entry_recovers(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fp = fp_for(SPEC)
    cache.put(fp, (None, "ok"))
    path = cache._path(fp)
    path.write_bytes(path.read_bytes()[:10])
    assert cache.get(fp) is MISS
    assert cache.stats.corrupt == 1
    assert not path.exists()  # bad entry deleted, next put re-creates
    cache.put(fp, (None, "ok"))
    assert cache.get(fp) == (None, "ok")


def test_garbage_entry_recovers(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fp = fp_for(SPEC)
    path = cache._path(fp)
    path.parent.mkdir(parents=True)
    path.write_bytes(b"not a pickle at all")
    assert cache.get(fp) is MISS
    assert cache.stats.corrupt == 1


def test_wrong_key_entry_is_rejected(tmp_path):
    """An entry filed under the wrong fingerprint must not be served."""
    cache = MeasurementCache(root=tmp_path)
    fp_a, fp_b = fp_for(SPEC, "s000"), fp_for(SPEC, "s111")
    cache.put(fp_a, (None, "a"))
    dst = cache._path(fp_b)
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_bytes(cache._path(fp_a).read_bytes())
    assert cache.get(fp_b) is MISS
    assert cache.stats.corrupt == 1


def test_wrong_schema_entry_is_rejected(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    fp = fp_for(SPEC)
    path = cache._path(fp)
    path.parent.mkdir(parents=True)
    entry = {"schema": -1, "fingerprint": fp, "payload": (None, "stale")}
    path.write_bytes(pickle.dumps(entry))
    assert cache.get(fp) is MISS


def test_unwritable_root_degrades_gracefully(tmp_path):
    target = tmp_path / "blocked"
    target.write_text("a file where the cache dir should go")
    cache = MeasurementCache(root=target)
    cache.put(fp_for(SPEC), (None, "x"))  # must not raise
    assert cache.stats.stores == 0
    assert cache.stats.write_errors == 1


# -- integration with measure_suite ------------------------------------------


def test_suite_build_populates_and_reuses_cache(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    cold_samples, cold_failures = measure_suite(SPEC, cache=cache)
    assert cache.stats.stores == len(cold_samples) + len(cold_failures)
    assert cache.stats.hits == 0

    warm_samples, warm_failures = measure_suite(SPEC, cache=cache)
    assert cache.stats.hits == cache.stats.stores
    assert warm_failures == cold_failures
    for a, b in zip(cold_samples, warm_samples):
        assert a.name == b.name
        assert a.measured_speedup == b.measured_speedup
        assert np.array_equal(a.scalar_features, b.scalar_features)
        assert np.array_equal(a.vector_features, b.vector_features)


def test_spec_change_misses_cache(tmp_path):
    cache = MeasurementCache(root=tmp_path)
    measure_suite(SPEC, cache=cache)
    hits_before = cache.stats.hits
    measure_suite(DatasetSpec("armv8-neon", "llv", seed=3, workers=1), cache=cache)
    assert cache.stats.hits == hits_before  # nothing reused across seeds
