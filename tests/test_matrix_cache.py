"""Feature-matrix cache tests: parity, fingerprinting, invalidation."""

import numpy as np
import pytest

from repro.costmodel import (
    LLVMLikeCostModel,
    LinearCostModel,
    RatedSpeedupModel,
    SpeedupModel,
    clear_matrix_cache,
    design_matrix,
    get_bundle,
    matrix_cache_disabled,
    matrix_cache_info,
    predict_all,
    samples_fingerprint,
)
from repro.costmodel.extended import extended_features
from repro.costmodel.rated import rated_features, rated_with_vf
from repro.costmodel.speedup import count_features, vector_count_features
from repro.costmodel.matrix import target_vector
from repro.fitting import LeastSquares

from tests.test_costmodel import feat, mk_sample


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_matrix_cache()
    yield
    clear_matrix_cache()


def toy_samples(n=10, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        counts = {
            k: float(rng.integers(1, 5)) for k in ("load", "add", "mul", "store")
        }
        out.append(
            mk_sample(
                name=f"s{i:03d}",
                scalar=feat(load=2, add=1, store=1),
                vector=feat(**counts),
                speedup=float(rng.uniform(0.5, 3.5)),
                scpi=float(rng.uniform(1.0, 4.0)),
                vcpi=float(rng.uniform(1.0, 4.0)),
            )
        )
    return out


REGISTERED = [
    count_features,
    vector_count_features,
    rated_features,
    rated_with_vf,
    extended_features,
]


class TestBatchParity:
    """Batch builders must match the per-sample loop row for row."""

    @pytest.mark.parametrize("fn", REGISTERED, ids=lambda f: f.__name__)
    def test_design_matrix_matches_loop(self, fn):
        samples = toy_samples()
        looped = np.stack([fn(s) for s in samples])
        with matrix_cache_disabled():
            fresh = design_matrix(samples, fn)
        cached = design_matrix(samples, fn)
        assert np.array_equal(cached, looped)
        assert np.array_equal(fresh, looped)

    def test_target_speedup_matches_loop(self):
        samples = toy_samples()
        assert np.array_equal(
            target_vector(samples, "speedup"),
            np.array([s.measured_speedup for s in samples]),
        )

    def test_target_implied_cost_matches_seed_formula(self):
        samples = toy_samples()
        model = LinearCostModel(LeastSquares())
        _, y = model.training_data(samples)
        expected = np.array([model.implied_vector_cost(s) for s in samples])
        np.testing.assert_allclose(y, expected, rtol=1e-12)

    def test_unknown_target_kind(self):
        with pytest.raises(KeyError):
            target_vector(toy_samples(3), "nope")

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: SpeedupModel(LeastSquares()),
            lambda: RatedSpeedupModel(LeastSquares()),
            lambda: LinearCostModel(LeastSquares()),
        ],
        ids=["speedup", "rated", "linear-cost"],
    )
    def test_predict_all_batch_matches_per_sample(self, factory):
        samples = toy_samples(12)
        model = factory().fit(samples)
        batch = predict_all(model, samples)
        looped = np.array([model.predict_speedup(s) for s in samples])
        np.testing.assert_allclose(batch, looped, rtol=0, atol=1e-12)

    def test_predict_all_static_model(self):
        samples = toy_samples(8)
        model = LLVMLikeCostModel()
        batch = predict_all(model, samples)
        looped = np.array([model.predict_speedup(s) for s in samples])
        np.testing.assert_allclose(batch, looped, rtol=0, atol=1e-12)


class TestFingerprint:
    def test_stable_for_equal_content(self):
        assert samples_fingerprint(toy_samples()) == samples_fingerprint(
            toy_samples()
        )

    def test_changes_on_speedup(self):
        samples = toy_samples()
        bumped = [samples[0].with_speedup(9.9)] + samples[1:]
        assert samples_fingerprint(samples) != samples_fingerprint(bumped)

    def test_changes_on_features(self):
        samples = toy_samples()
        other = toy_samples()
        other[3] = mk_sample(
            name=other[3].name, vector=feat(div=7), speedup=other[3].measured_speedup
        )
        assert samples_fingerprint(samples) != samples_fingerprint(other)

    def test_changes_on_order_and_length(self):
        samples = toy_samples()
        assert samples_fingerprint(samples) != samples_fingerprint(samples[::-1])
        assert samples_fingerprint(samples) != samples_fingerprint(samples[:-1])


class TestInvalidation:
    def test_same_content_shares_one_bundle(self):
        a = get_bundle(toy_samples())
        b = get_bundle(toy_samples())
        assert a is b
        assert matrix_cache_info()["hits"] >= 1

    def test_mutated_dataset_rebuilds(self):
        samples = toy_samples()
        before = get_bundle(samples)
        jittered = [s.with_speedup(s.measured_speedup * 1.01) for s in samples]
        after = get_bundle(jittered)
        assert after is not before
        assert after.fingerprint != before.fingerprint
        assert not np.array_equal(after.measured, before.measured)

    def test_derived_matrices_follow_the_rebuild(self):
        samples = toy_samples()
        x_before = design_matrix(samples, rated_features)
        mutated = list(samples)
        mutated[0] = mk_sample(
            name=samples[0].name,
            vector=feat(load=9, div=9),
            speedup=samples[0].measured_speedup,
        )
        x_after = design_matrix(mutated, rated_features)
        assert not np.array_equal(x_before[0], x_after[0])
        np.testing.assert_array_equal(x_before[1:], x_after[1:])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            get_bundle([])


class TestCacheControl:
    def test_disabled_context_builds_fresh(self):
        samples = toy_samples()
        with matrix_cache_disabled():
            a = get_bundle(samples)
            b = get_bundle(samples)
            assert a is not b
            assert np.array_equal(a.measured, b.measured)
        assert matrix_cache_info()["bundles"] == 0

    def test_clear_drops_bundles(self):
        get_bundle(toy_samples())
        assert matrix_cache_info()["bundles"] == 1
        clear_matrix_cache()
        info = matrix_cache_info()
        assert info["bundles"] == 0 and info["hits"] == 0

    def test_shared_arrays_are_readonly(self):
        samples = toy_samples()
        bundle = get_bundle(samples)
        with pytest.raises(ValueError):
            bundle.measured[0] = 0.0
        X = design_matrix(samples, rated_features)
        with pytest.raises(ValueError):
            X[0, 0] = 1.0

    def test_unregistered_featurizer_not_cached(self):
        samples = toy_samples()

        def custom(s):
            return s.vector_features * 2.0

        X = design_matrix(samples, custom)
        assert np.array_equal(X, np.stack([custom(s) for s in samples]))
        assert X.flags.writeable  # per-call stack, caller owns it
        assert matrix_cache_info()["bundles"] == 0


class TestDiskTier:
    """On-disk bundle persistence: REPRO_MATRIX_CACHE_DIR."""

    def test_disk_roundtrip_warm_starts_a_cold_process(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MATRIX_CACHE_DIR", str(tmp_path))
        samples = toy_samples()
        built = get_bundle(samples)
        fp = built.fingerprint
        assert (tmp_path / f"bundle-{fp}.pkl").is_file()
        assert (tmp_path / f"bundle-{fp}.pkl.sha256").is_file()

        # Simulate a fresh process: drop memory, load from disk.
        clear_matrix_cache()
        loaded = get_bundle(samples)
        assert loaded is not built
        for field in (
            "vf",
            "measured",
            "scalar_cpi",
            "vector_cpi",
            "scalar_features",
            "vector_features",
        ):
            np.testing.assert_array_equal(
                getattr(loaded, field), getattr(built, field)
            )
        assert not loaded.measured.flags.writeable

    def test_corrupt_bundle_evicts_and_rebuilds(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_CACHE_DIR", str(tmp_path))
        samples = toy_samples()
        fp = get_bundle(samples).fingerprint
        path = tmp_path / f"bundle-{fp}.pkl"
        path.write_bytes(b"\x80\x05 torn mid-write")

        clear_matrix_cache()
        rebuilt = get_bundle(samples)  # must not raise
        np.testing.assert_array_equal(
            rebuilt.measured, [s.measured_speedup for s in samples]
        )
        # The rebuild re-persisted valid bytes.
        import hashlib

        blob = path.read_bytes()
        recorded = (
            (tmp_path / f"bundle-{fp}.pkl.sha256").read_text().strip()
        )
        assert hashlib.sha256(blob).hexdigest() == recorded

    def test_missing_sidecar_counts_as_corruption(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MATRIX_CACHE_DIR", str(tmp_path))
        samples = toy_samples()
        fp = get_bundle(samples).fingerprint
        (tmp_path / f"bundle-{fp}.pkl.sha256").unlink()
        clear_matrix_cache()
        assert get_bundle(samples).n == len(samples)  # silent rebuild

    def test_foreign_schema_is_evicted_not_deserialized(
        self, tmp_path, monkeypatch
    ):
        import hashlib
        import pickle

        monkeypatch.setenv("REPRO_MATRIX_CACHE_DIR", str(tmp_path))
        samples = toy_samples()
        fp = get_bundle(samples).fingerprint
        path = tmp_path / f"bundle-{fp}.pkl"
        blob = pickle.dumps({"schema": 999, "fingerprint": fp})
        path.write_bytes(blob)
        (tmp_path / f"bundle-{fp}.pkl.sha256").write_text(
            hashlib.sha256(blob).hexdigest()
        )
        clear_matrix_cache()
        assert get_bundle(samples).n == len(samples)

    def test_tier_off_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_MATRIX_CACHE_DIR", raising=False)
        get_bundle(toy_samples())
        assert list(tmp_path.iterdir()) == []

    def test_unwritable_dir_degrades_to_no_persistence(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "blocked"
        target.write_text("a file where the dir should be")
        monkeypatch.setenv("REPRO_MATRIX_CACHE_DIR", str(target))
        assert get_bundle(toy_samples()).n == 10  # must not raise
