"""IR lint rules and the pipeline verify+lint pre-pass."""

from repro.analysis.framework import AnalysisManager, Severity, lint_kernel
from repro.ir.expr import CmpKind, Compare, Const
from repro.pipeline.build import static_prepass
from repro.tsvc import all_kernels

from tests.helpers import build


def lint(kern):
    return lint_kernel(kern, AnalysisManager())


def messages(kern, severity=None):
    return [
        r.message
        for r in lint(kern)
        if severity is None or r.severity is severity
    ]


class TestDeadArrayStores:
    def test_overwritten_store_warns(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[i] = b[i]      # S0: dead, S1 rewrites a[i] unread
            a[i] = c[i]      # S1

        warns = messages(build("t", body), Severity.WARNING)
        assert any("dead store" in m and "S0" in m for m in warns)

    def test_intervening_read_suppresses(self):
        def body(k):
            a, b, c, d = k.arrays("a", "b", "c", "d")
            i = k.loop(64)
            a[i] = b[i]
            c[i] = a[i] * 2.0
            a[i] = d[i]

        assert messages(build("t", body), Severity.WARNING) == []

    def test_different_locations_do_not_warn(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            a[i] = b[i]
            a[i + 1] = c[i]

        assert messages(build("t", body), Severity.WARNING) == []

    def test_guarded_store_not_flagged(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = b[i]
            a[i] = c[i]

        assert messages(build("t", body), Severity.WARNING) == []


class TestDeadScalarDefs:
    def test_unread_assignment_warns(self):
        def body(k):
            a, b, c = k.arrays("a", "b", "c")
            t = k.scalar("t")
            i = k.loop(64)
            t.set(b[i])      # S0: dead
            t.set(c[i])      # S1
            a[i] = t + 1.0

        warns = messages(build("t", body), Severity.WARNING)
        assert any("scalar 't'" in m and "never read" in m for m in warns)

    def test_live_defs_quiet(self):
        def body(k):
            a, b = k.arrays("a", "b")
            t = k.scalar("t")
            i = k.loop(64)
            t.set(b[i])
            a[i] = t + 1.0

        assert messages(build("t", body), Severity.WARNING) == []


class TestUnusedDeclarations:
    def test_unused_array_and_scalar_warn(self):
        def body(k):
            a, b = k.arrays("a", "b")
            k.array("ghost")
            k.scalar("phantom")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        warns = messages(build("t", body), Severity.WARNING)
        assert any("array 'ghost'" in m for m in warns)
        assert any("scalar 'phantom'" in m for m in warns)

    def test_param_only_read_is_used(self):
        def body(k):
            a, b = k.arrays("a", "b")
            s = k.param("s", value=2.0)
            i = k.loop(64)
            a[i] = b[i] * s

        assert messages(build("t", body), Severity.WARNING) == []


class TestConstantGuards:
    def test_always_true_guard_warns(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(Compare(CmpKind.GT, Const(1.0), Const(0.0))):
                a[i] = b[i]

        warns = messages(build("t", body), Severity.WARNING)
        assert any("always true" in m and "else branch is dead" in m for m in warns)

    def test_data_dependent_guard_quiet(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = b[i]

        assert messages(build("t", body), Severity.WARNING) == []


class TestVectorizationHazards:
    def test_indirect_subscript_is_remark_not_warning(self):
        def body(k):
            from repro.ir.types import DType

            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(64)
            a[ip[i]] = b[i]

        remarks = lint(build("t", body))
        hazards = [r for r in remarks if "non-affine subscript" in r.message]
        assert hazards and all(r.severity is Severity.REMARK for r in hazards)
        assert any("gather/scatter" in r.message for r in hazards)

    def test_invariant_statement_remark(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[3] = 2.0
            b[i] = b[i] + 1.0

        remarks = lint(build("t", body))
        assert any("inner-loop invariant" in r.message for r in remarks)


class TestSuiteIsClean:
    def test_no_warnings_or_errors_on_tsvc(self):
        am = AnalysisManager()
        noisy = {
            kern.name: [r.format() for r in lint_kernel(kern, am)
                        if r.severity.rank >= Severity.WARNING.rank]
            for kern in all_kernels()
        }
        noisy = {k: v for k, v in noisy.items() if v}
        assert noisy == {}, f"suite kernels with lint warnings: {noisy}"

    def test_static_prepass_accepts_suite_and_memoizes(self):
        kernels = list(all_kernels())
        static_prepass(kernels)  # must not raise
        from repro.pipeline.build import _PREPASS_SEEN

        assert all(_PREPASS_SEEN.get(id(k)) is k for k in kernels)
