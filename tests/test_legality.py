"""Legality and plan tests (vectorize.legality / vectorize.plan / llv)."""

import math

from repro.ir import DType
from repro.targets import ARMV8_NEON, X86_AVX2
from repro.vectorize import (
    VectorizationFailure,
    check_legality,
    is_plan,
    natural_vf,
    vectorize_loop,
    widest_dtype,
)

from tests.helpers import build


class TestWidestDtypeAndVF:
    def test_f32_only(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        kern = build("t", body)
        assert widest_dtype(kern) is DType.F32
        assert natural_vf(kern, ARMV8_NEON) == 4
        assert natural_vf(kern, X86_AVX2) == 8

    def test_f64_wins(self):
        def body(k):
            a = k.array("a", dtype=DType.F64)
            b = k.array("b")
            i = k.loop(64)
            a[i] = a[i] + 1.0
            b[i] = b[i] * 2.0

        kern = build("t", body)
        assert widest_dtype(kern) is DType.F64
        assert natural_vf(kern, ARMV8_NEON) == 2

    def test_i64_scalar_counts(self):
        def body(k):
            a = k.array("a")
            s = k.scalar("s", dtype=DType.I64)
            i = k.loop(64)
            a[i] = a[i] + 1.0
            s.set(s + 1)

        assert widest_dtype(build("t", body)) is DType.I64


class TestLegality:
    def test_clean_loop(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        leg = check_legality(build("t", body), 8)
        assert leg.ok
        assert leg.max_safe_vf == math.inf

    def test_recurrence_scalar_rejected(self):
        def body(k):
            a, b = k.arrays("a", "b")
            t = k.scalar("t")
            i = k.loop(64)
            a[i] = t + b[i]
            t.set(b[i])

        leg = check_legality(build("t", body), 4)
        assert not leg.ok
        assert leg.reason == "scalar recurrence"

    def test_distance_respected(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 4] + b[i]

        kern = build("t", body)
        assert check_legality(kern, 4).ok
        assert not check_legality(kern, 8).ok
        assert check_legality(kern, 8).reason == "unsafe memory dependence"

    def test_invariant_store_rejected(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[3] = b[i] * 2.0

        leg = check_legality(build("t", body), 4)
        assert not leg.ok
        assert leg.reason == "loop-invariant store"

    def test_guards_are_legal(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = b[i]

        assert check_legality(build("t", body), 4).ok


class TestLLVDriver:
    def test_natural_vf_chosen(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        plan = vectorize_loop(build("t", body), ARMV8_NEON)
        assert is_plan(plan)
        assert plan.vf == 4
        assert plan.kind == "llv"

    def test_tiny_trip_rejected(self):
        def body(k):
            a = k.array("a", extents=(8,))
            i = k.loop(2)
            a[i] = a[i] + 1.0

        plan = vectorize_loop(build("t", body), ARMV8_NEON)
        assert isinstance(plan, VectorizationFailure)
        assert "trip" in plan.reason

    def test_vf_one_rejected(self):
        def body(k):
            a = k.array("a")
            i = k.loop(64)
            a[i] = a[i] + 1.0

        plan = vectorize_loop(build("t", body), ARMV8_NEON, vf=1)
        assert isinstance(plan, VectorizationFailure)

    def test_failure_str_mentions_reason(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = a[i - 1] + b[i]

        plan = vectorize_loop(build("t", body), ARMV8_NEON)
        assert "not vectorizable" in str(plan)
        assert "unsafe memory dependence" in str(plan)


class TestPlanProperties:
    def test_reductions_exposed(self):
        def body(k):
            a = k.array("a")
            s = k.scalar("s")
            i = k.loop(64)
            s.set(s + a[i])

        plan = vectorize_loop(build("t", body), ARMV8_NEON)
        assert set(plan.reductions) == {"s"}

    def test_has_guards(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = b[i]

        plan = vectorize_loop(build("t", body), ARMV8_NEON)
        assert plan.has_guards
        assert "VF=4" in str(plan)
