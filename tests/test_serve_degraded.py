"""Degraded-mode matrix: every combination answers, none ever raises.

The grid crosses the four availability dimensions the satellite names —
toolchain present × model published × native breaker open × range
proofs enabled — and asserts that every cell (a) returns a verdict,
(b) emits exactly one consolidated ``-Rpass-missed=serve`` remark when
anything is degraded and none when healthy, and (c) produces the same
verdict bits as every other cell with the same model availability:
degradation is allowed to slow or annotate an answer, never to change
it.
"""

import itertools

import pytest

from repro.serve import Advisor, ModelRegistry, canonical_verdict

GUARDED = """
kernel guarded {
    f32 a[128], b[128];
    for (i = 0; i < 128; i++) {
        if (b[i] > 0.0) { a[i] = b[i]; } else { a[i] = 0.0 - b[i]; }
    }
}
"""


@pytest.fixture(scope="module")
def fitted_entry():
    """One fitted entry, shared by every model-present cell."""
    from repro.fitting.nnls import NonNegativeLeastSquares
    from repro.costmodel.speedup import SpeedupModel
    from repro.serve import entry_from_model
    from repro.serve.chaos import suite_payloads

    selected = suite_payloads(10)
    samples = [s for _, _, s in selected]
    model = SpeedupModel(NonNegativeLeastSquares()).fit(samples)
    return entry_from_model(
        model, samples, target="armv8-neon", vectorizer="llv"
    )


GRID = list(itertools.product([True, False], repeat=4))


@pytest.mark.parametrize(
    "toolchain, with_model, breaker_open, ranges_on", GRID
)
def test_degraded_cell_returns_verdict_with_one_remark(
    tmp_path,
    monkeypatch,
    fitted_entry,
    toolchain,
    with_model,
    breaker_open,
    ranges_on,
):
    import repro.serve.advisor as advisor_mod

    monkeypatch.setattr(
        advisor_mod, "native_enabled", lambda: toolchain
    )
    monkeypatch.setattr(
        advisor_mod, "native_available", lambda: toolchain
    )
    monkeypatch.setenv("REPRO_RANGES", "1" if ranges_on else "0")

    registry = ModelRegistry(tmp_path / "registry")
    if with_model:
        registry.publish(fitted_entry)
    advisor = Advisor(registry)
    if breaker_open:
        advisor.native_breaker.force_open()

    resp = advisor.advise({"kernel": GUARDED})  # must never raise

    assert isinstance(resp["vectorized"], bool)
    assert resp["predicted_speedup"] is not None
    assert resp["model"] == (
        fitted_entry.version if with_model else "llvm-static"
    )

    # The advisory plan field rides along exactly when a model is
    # published: availability degradations never strip it, and it
    # never adds a degraded clause (asserted via the counts below).
    if with_model:
        assert resp["plan"] is not None
        assert resp["plan"]["label"]
        assert resp["plan"]["predicted_speedup"] > 0
        assert resp["plan"]["n_points"] >= 1
    else:
        assert resp["plan"] is None

    anything_degraded = (
        not toolchain or not with_model or breaker_open or not ranges_on
    )
    serve_remarks = [r for r in resp["remarks"] if r["pass"] == "serve"]
    assert len(serve_remarks) == (1 if anything_degraded else 0)
    if anything_degraded:
        assert serve_remarks[0]["flag"] == "-Rpass-missed"
        assert serve_remarks[0]["severity"] == "warning"
        # The remark's clause count matches the degraded dimensions:
        # native demotion (unavailable OR breaker) collapses into one.
        expected_clauses = sum(
            (
                not toolchain or breaker_open,
                not with_model,
                not ranges_on,
            )
        )
        assert len(resp["degraded"]) == expected_clauses
        assert serve_remarks[0]["args"]["degraded"] == str(expected_clauses)


@pytest.mark.parametrize("with_model", [True, False])
def test_verdict_bits_invariant_across_degradations(
    tmp_path, monkeypatch, fitted_entry, with_model
):
    """All 8 availability cells of one model group agree bit-for-bit."""
    import repro.serve.advisor as advisor_mod

    cores = set()
    for toolchain, breaker_open, ranges_on in itertools.product(
        [True, False], repeat=3
    ):
        monkeypatch.setattr(
            advisor_mod, "native_enabled", lambda t=toolchain: t
        )
        monkeypatch.setattr(
            advisor_mod, "native_available", lambda t=toolchain: t
        )
        monkeypatch.setenv("REPRO_RANGES", "1" if ranges_on else "0")
        registry = ModelRegistry(
            tmp_path / f"reg-{toolchain}-{breaker_open}-{ranges_on}"
        )
        if with_model:
            registry.publish(fitted_entry)
        advisor = Advisor(registry)
        if breaker_open:
            advisor.native_breaker.force_open()
        cores.add(canonical_verdict(advisor.advise({"kernel": GUARDED})))
    assert len(cores) == 1


def test_plan_hint_gated_by_prepass_breaker(tmp_path, fitted_entry):
    """The new cell: an open *prepass* breaker strips the advisory
    plan (its enumeration leans on the prepass analyses) but leaves
    the verdict core bit-identical to the healthy cell."""
    from repro.serve import canonical_verdict

    registry = ModelRegistry(tmp_path / "reg-closed")
    registry.publish(fitted_entry)
    healthy = Advisor(registry).advise({"kernel": GUARDED})
    assert healthy["plan"] is not None

    registry2 = ModelRegistry(tmp_path / "reg-open")
    registry2.publish(fitted_entry)
    tripped = Advisor(registry2)
    tripped.prepass_breaker.force_open()
    resp = tripped.advise({"kernel": GUARDED})
    assert resp["plan"] is None
    assert "analysis prepass skipped (breaker open)" in resp["degraded"]
    assert canonical_verdict(resp) == canonical_verdict(healthy)
