"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir import KernelBuilder
from repro.targets import ARMV8_NEON, GENERIC_IR, X86_AVX2
from repro.tsvc import Dims

#: Small suite dimensions: fast functional execution, still large
#: enough for every kernel's derived strides/offsets (n//2, n//5, …).
SMALL = Dims(n=240, n2=16)


@pytest.fixture
def arm():
    return ARMV8_NEON


@pytest.fixture
def x86():
    return X86_AVX2


@pytest.fixture
def generic_ir():
    return GENERIC_IR


@pytest.fixture
def small_dims():
    return SMALL
