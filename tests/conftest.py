"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.targets import ARMV8_NEON, GENERIC_IR, X86_AVX2
from repro.tsvc import Dims

#: Small suite dimensions: fast functional execution, still large
#: enough for every kernel's derived strides/offsets (n//2, n//5, …).
SMALL = Dims(n=240, n2=16)


@pytest.fixture(scope="session", autouse=True)
def _isolated_measurement_cache(tmp_path_factory):
    """Keep the suite's persistent measurement cache out of ~/.cache.

    Tests still exercise the cache layer (warm rebuilds within the
    session), but against a throwaway directory.
    """
    import os

    from repro.pipeline import set_default_cache
    from repro.sim import reset_native_state

    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("measurement-cache"))
    os.environ["REPRO_NATIVE_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("native-cache")
    )
    set_default_cache(None)
    reset_native_state()
    yield
    set_default_cache(None)


@pytest.fixture
def arm():
    return ARMV8_NEON


@pytest.fixture
def x86():
    return X86_AVX2


@pytest.fixture
def generic_ir():
    return GENERIC_IR


@pytest.fixture
def small_dims():
    return SMALL
