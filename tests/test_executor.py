"""Functional executor unit tests (scalar + vector interpretation)."""

import numpy as np
import pytest

from repro.ir import DType, fabs, fsqrt, select
from repro.sim.executor import (
    initial_scalars,
    make_buffers,
    run_scalar,
    run_vector,
)
from repro.targets import ARMV8_NEON
from repro.vectorize import vectorize_loop

from tests.helpers import build


class TestMakeBuffers:
    def test_shapes_and_dtypes(self):
        def body(k):
            a = k.array("a", extents=(64,))
            aa = k.array("aa", extents=(8, 8))
            ip = k.array("ip", dtype=DType.I32, extents=(64,))
            i = k.loop(8)
            a[i] = aa[0, i] + 1.0

        bufs = make_buffers(build("t", body), seed=0)
        assert bufs["a"].shape == (64,) and bufs["a"].dtype == np.float32
        assert bufs["aa"].shape == (8, 8)
        assert bufs["ip"].dtype == np.int32

    def test_int_arrays_stay_in_bounds(self):
        def body(k):
            a = k.array("a", extents=(32,))
            ip = k.array("ip", dtype=DType.I32, extents=(64,))
            i = k.loop(32)
            a[i] = a[ip[i]] * 1.0

        bufs = make_buffers(build("t", body), seed=1)
        # Index values must be valid for the *smallest* array (32).
        assert bufs["ip"].max() < 32
        assert bufs["ip"].min() >= 0

    def test_deterministic(self):
        def body(k):
            a = k.array("a", extents=(16,))
            i = k.loop(16)
            a[i] = a[i] + 1.0

        kern = build("t", body)
        b1 = make_buffers(kern, seed=7)
        b2 = make_buffers(kern, seed=7)
        np.testing.assert_array_equal(b1["a"], b2["a"])

    def test_float_range(self):
        def body(k):
            a = k.array("a", extents=(1000,))
            i = k.loop(10)
            a[i] = a[i] * 1.0

        bufs = make_buffers(build("t", body), seed=0)
        assert bufs["a"].min() >= -1.0 and bufs["a"].max() <= 1.0
        assert (bufs["a"] > 0).any() and (bufs["a"] < 0).any()


class TestScalarRun:
    def test_simple_store(self):
        def body(k):
            a, b = k.arrays("a", "b", )
            i = k.loop(16)
            a[i] = b[i] * 2.0

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        expected = bufs["b"][:16] * np.float32(2.0)
        run_scalar(kern, bufs)
        np.testing.assert_allclose(bufs["a"][:16], expected)

    def test_sum_reduction_value(self):
        def body(k):
            a = k.array("a", extents=(32,))
            s = k.scalar("s")
            i = k.loop(32)
            s.set(s + a[i])

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        r = run_scalar(kern, bufs)
        assert float(r.scalars["s"]) == pytest.approx(
            float(bufs["a"].astype(np.float64).sum()), rel=1e-4
        )

    def test_guard_probs_recorded(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(200)
            with k.if_(b[i] > 0.0):
                a[i] = 1.0

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        r = run_scalar(kern, bufs)
        assert 0 in r.guard_probs
        assert 0.3 < r.guard_probs[0] < 0.7  # uniform(-1,1) data

    def test_truncated_run(self):
        def body(k):
            a = k.array("a", extents=(100,))
            i = k.loop(100)
            a[i] = 5.0

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        r = run_scalar(kern, bufs, max_inner_iters=10)
        assert r.iterations == 10
        assert (bufs["a"][:10] == 5.0).all()
        assert not (bufs["a"][10:] == 5.0).all()

    def test_negative_index_wraps(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(8)
            a[i] = b[i - 1]

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        last = bufs["b"][-1]
        run_scalar(kern, bufs)
        assert bufs["a"][0] == last

    def test_select_and_math(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(16)
            a[i] = select(b[i] > 0.0, fsqrt(b[i]), fabs(b[i]))

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        b = bufs["b"][:16].copy()
        run_scalar(kern, bufs)
        expected = np.where(b > 0, np.sqrt(np.abs(b)), np.abs(b))
        np.testing.assert_allclose(bufs["a"][:16], expected, rtol=1e-6)

    def test_f32_semantics_preserved(self):
        """Arithmetic stays in float32, not promoted to float64."""

        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(4)
            a[i] = b[i] + 1e-9

        kern = build("t", body)
        bufs = make_buffers(kern, seed=0)
        b0 = bufs["b"][0]
        run_scalar(kern, bufs)
        # 1e-9 is below f32 resolution near 1.0: must round like f32.
        assert bufs["a"][0] == np.float32(b0 + np.float32(1e-9))


class TestVectorRun:
    def test_iterations_counted_in_blocks(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            a[i] = b[i] + 1.0

        kern = build("t", body)
        plan = vectorize_loop(kern, ARMV8_NEON)
        bufs = make_buffers(kern, seed=0)
        r = run_vector(plan, bufs)
        assert r.iterations == 64 // plan.vf

    def test_masked_store_leaves_other_lanes(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = 9.0

        kern = build("t", body)
        plan = vectorize_loop(kern, ARMV8_NEON)
        bufs = make_buffers(kern, seed=0)
        old_a = bufs["a"].copy()
        b = bufs["b"].copy()
        run_vector(plan, bufs)
        taken = b[:64] > 0
        assert (bufs["a"][:64][taken] == 9.0).all()
        np.testing.assert_array_equal(bufs["a"][:64][~taken], old_a[:64][~taken])

    def test_if_else_lanes(self):
        def body(k):
            a, b = k.arrays("a", "b")
            i = k.loop(64)
            with k.if_(b[i] > 0.0):
                a[i] = 1.0
            with k.else_():
                a[i] = -1.0

        kern = build("t", body)
        plan = vectorize_loop(kern, ARMV8_NEON)
        bufs = make_buffers(kern, seed=0)
        b = bufs["b"].copy()
        run_vector(plan, bufs)
        np.testing.assert_array_equal(
            bufs["a"][:64], np.where(b[:64] > 0, 1.0, -1.0).astype(np.float32)
        )

    def test_ordered_scatter_duplicate_indices(self):
        """Scatter with duplicate indices keeps last-lane-wins order."""

        def body(k):
            a, b = k.arrays("a", "b")
            ip = k.array("ip", dtype=DType.I32)
            i = k.loop(8)
            a[ip[i]] = b[i]

        kern = build("t", body)
        plan = vectorize_loop(kern, ARMV8_NEON)
        bufs = make_buffers(kern, seed=0)
        bufs["ip"][:8] = 3  # all lanes hit the same slot
        b = bufs["b"].copy()
        run_vector(plan, bufs)
        assert bufs["a"][3] == b[7]  # the last iteration's value

    def test_initial_scalars_respect_init(self):
        def body(k):
            a = k.array("a")
            p = k.scalar("p", init=1.0)
            i = k.loop(8)
            p.set(p * a[i])

        kern = build("t", body)
        env = initial_scalars(kern)
        assert env["p"] == np.float32(1.0)
