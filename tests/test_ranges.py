"""Value-range abstract interpretation tests (analysis + consumers).

Three layers of confidence, mirroring the soundness argument:

* unit tests of the interval lattice (truncating integer division,
  f32 endpoint padding, NaN propagation, widening termination);
* property tests against the concrete interpreter: every scalar value
  a real execution produces must lie inside the static fixpoint
  interval — the analysis quantifies over all iterations, so a single
  counterexample is a soundness bug, not noise;
* consumer tests: the bounds/guard passes, ``prove_safe``, the
  static/dynamic cross-check, the measurement prepass gate, and the
  compiled tiers' elision paths (guard folding, unguarded gathers
  behind the native runtime contract, shift-wrapper removal) — each
  checked bit-identical against the unoptimized path.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.framework.passmanager import AnalysisManager
from repro.analysis.framework.ranges import (
    BoundsCheckPass,
    GuardRangePass,
    crosscheck_kernel,
    prove_safe,
    ranges_enabled,
)
from repro.analysis.ranges import (
    INT_BOUNDS,
    MAX_ROUNDS,
    Interval,
    _binop_interval,
    analyze_ranges,
)
from repro.ir import DType
from repro.ir.expr import BinOpKind
from repro.ir.verify import VerificationError
from repro.pipeline.build import static_prepass
from repro.sim import compile as simcompile
from repro.sim import native
from repro.sim.compile import bit_identical, clear_compile_cache, get_compiled
from repro.sim.executor import make_buffers, run_scalar_interpreted, run_vector
from repro.targets import ARMV8_NEON
from repro.tsvc import all_kernels
from repro.vectorize import vectorize_loop

from tests.helpers import SMALL, build, copy_buffers

SUITE = list(all_kernels(dims=SMALL))

HAVE_CC = native.find_toolchain() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no usable C toolchain")


@pytest.fixture(autouse=True)
def _clean_tier_state():
    clear_compile_cache()
    native.reset_native_state()
    yield
    clear_compile_cache()
    native.reset_native_state()


# ---------------------------------------------------------------------------
# Interval lattice units
# ---------------------------------------------------------------------------


class TestInterval:
    def test_int_div_truncates_toward_zero(self):
        # C casts the true divide back with truncation: -7/2 == -3.
        out = _binop_interval(
            BinOpKind.DIV, Interval.exact(-7), Interval.exact(2), DType.I32
        )
        assert (out.lo, out.hi) == (-3, -3)

    def test_div_by_interval_containing_zero_is_top(self):
        out = _binop_interval(
            BinOpKind.DIV, Interval.exact(1), Interval(-1, 1), DType.I32
        )
        assert (out.lo, out.hi) == INT_BOUNDS[DType.I32]

    def test_f32_arithmetic_pads_endpoints(self):
        a, b = Interval.exact(1.0), Interval.exact(1e-8)
        out = _binop_interval(BinOpKind.ADD, a, b, DType.F32)
        concrete = float(np.float32(1.0) + np.float32(1e-8))
        assert out.contains(concrete)
        assert out.lo < 1.0 + 1e-8 < out.hi

    def test_nan_carries_through_minmax(self):
        nan = Interval(0.0, 1.0, maybe_nan=True)
        out = _binop_interval(BinOpKind.MIN, nan, Interval.exact(0.5), DType.F32)
        assert out.maybe_nan
        assert not out.definitely_true()

    def test_compare_never_definite_under_nan(self):
        assert Interval(2.0, 3.0, maybe_nan=True).definitely_true() is False

    def test_exact_nan_is_top_with_nan_bit(self):
        out = Interval.exact(float("nan"))
        assert out.maybe_nan and math.isinf(out.lo) and math.isinf(out.hi)

    def test_wrapping_add_clamps_to_dtype(self):
        big = Interval.exact(2**31 - 1)
        out = _binop_interval(BinOpKind.ADD, big, Interval.exact(1), DType.I32)
        assert (out.lo, out.hi) == INT_BOUNDS[DType.I32]


class TestWidening:
    def test_loop_carried_growth_terminates(self):
        def body(k):
            a = k.array("a", extents=(64,))
            s = k.scalar("s", DType.I32, init=0)
            i = k.loop(64)
            s.set(s + 1)
            a[i] = a[i] * 1.0

        kern = build("widen_probe", body, default_len=64)
        r = analyze_ranges(kern, assume_inits=True)
        assert r.rounds <= MAX_ROUNDS
        assert "s" in r.widened
        # Widened to the dtype extreme, still containing every concrete
        # value the 64 iterations can produce.
        assert r.entry["s"].contains(64)

    def test_stable_scalar_not_widened(self):
        def body(k):
            a = k.array("a", extents=(64,))
            t = k.scalar("t", DType.F32, init=2.0)
            i = k.loop(64)
            a[i] = a[i] * t

        kern = build("stable_probe", body, default_len=64)
        r = analyze_ranges(kern, assume_inits=True)
        assert r.widened == ()
        assert r.entry["t"].is_constant


# ---------------------------------------------------------------------------
# Soundness property: static intervals contain concrete scalar values
# ---------------------------------------------------------------------------


class TestSoundnessVsInterpreter:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_final_scalars_inside_harness_fixpoint(self, seed):
        """The harness fixpoint is loop-invariant, so the scalar env
        after a full concrete run must lie inside it — on every suite
        kernel, for multiple buffer seeds."""
        for kern in SUITE:
            ranges = analyze_ranges(kern, assume_inits=True)
            bufs = make_buffers(kern, seed=seed)
            result = run_scalar_interpreted(kern, bufs)
            for name, value in result.scalars.items():
                v = float(np.asarray(value))
                assert ranges.entry[name].contains(v), (
                    f"{kern.name}: scalar {name!r} = {v} escapes static "
                    f"interval {ranges.entry[name]} (seed {seed})"
                )

    def test_pure_fixpoint_contains_harness_fixpoint(self):
        """Dropping the init assumption can only widen intervals."""
        for kern in SUITE[::7]:
            har = analyze_ranges(kern, assume_inits=True)
            pure = analyze_ranges(kern, assume_inits=False)
            for name, hi in har.entry.items():
                pi = pure.entry[name]
                assert pi.lo <= hi.lo and hi.hi <= pi.hi, (
                    f"{kern.name}: pure interval {pi} for {name!r} "
                    f"tighter than harness interval {hi}"
                )


# ---------------------------------------------------------------------------
# Bounds pass, prove_safe, cross-check
# ---------------------------------------------------------------------------


class TestBoundsAndSafety:
    def test_suite_gather_proof_rate(self):
        am = AnalysisManager()
        total = proven = 0
        for kern in SUITE:
            b = am.get(BoundsCheckPass, kern)
            total += b.gathers_total
            proven += b.gathers_proven
        assert total > 0
        assert proven / total >= 0.6, f"only {proven}/{total} gathers proven"

    def test_suite_all_proven_safe(self):
        am = AnalysisManager()
        for kern in SUITE:
            report = prove_safe(kern, am)
            assert report.classification == "proven-safe", (
                f"{kern.name}: {report.classification}: {report.reasons}"
            )

    def test_crosscheck_suite_no_contradictions(self):
        am = AnalysisManager()
        out = []
        for kern in SUITE:
            out += crosscheck_kernel(kern, seed=0, manager=am)
        assert out == [], out

    def test_unguarded_oob_is_proven_unsafe(self):
        def body(k):
            a = k.array("a", extents=(64,))
            i = k.loop(64)
            a[i + 32] = a[i]

        kern = build("oob_probe", body, default_len=64)
        report = prove_safe(kern, AnalysisManager())
        assert report.classification == "proven-unsafe"
        assert any("unguarded" in r for r in report.reasons)

    def test_guarded_oob_is_unknown(self):
        def body(k):
            a = k.array("a", extents=(64,))
            b = k.array("b", extents=(64,))
            i = k.loop(64)
            with k.if_(b[i] > 0.5):
                a[i + 32] = a[i]

        kern = build("guarded_oob_probe", body, default_len=64)
        report = prove_safe(kern, AnalysisManager())
        assert report.classification == "unknown"

    def test_prepass_rejects_proven_unsafe(self, monkeypatch):
        def body(k):
            a = k.array("a", extents=(64,))
            i = k.loop(64)
            a[i + 32] = a[i]

        kern = build("oob_prepass_probe", body, default_len=64)
        monkeypatch.delenv("REPRO_RANGES", raising=False)
        with pytest.raises(VerificationError, match="out-of-bounds"):
            static_prepass([kern])
        # Opting out of range consumption also disarms the gate.
        monkeypatch.setenv("REPRO_RANGES", "0")
        static_prepass([build("oob_prepass_probe2", body, default_len=64)])

    def test_ranges_enabled_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_RANGES", raising=False)
        assert ranges_enabled()
        monkeypatch.setenv("REPRO_RANGES", "0")
        assert not ranges_enabled()


# ---------------------------------------------------------------------------
# Guard folding in the compiled tiers
# ---------------------------------------------------------------------------


def _fold_probe():
    def body(k):
        a = k.array("a", extents=(64,))
        b = k.array("b", extents=(64,))
        i = k.loop(64)
        with k.if_(i < 100):  # provably always taken
            a[i] = b[i] + 1.0
        with k.if_(i > 200):  # provably never taken
            a[i] = b[i] - 1.0

    return build("fold_probe", body, default_len=64)


class TestGuardFolding:
    def test_guard_range_pass_verdicts(self):
        kern = _fold_probe()
        info = AnalysisManager().get(GuardRangePass, kern)
        assert info.verdicts == {0: True, 2: False}
        stmts = [s for s in kern.stmts()]
        assert info.fold_of(stmts[0]) is True
        assert info.fold_of(stmts[2]) is False

    def test_init_contingent_guard_never_folds(self):
        def body(k):
            a = k.array("a", extents=(64,))
            t = k.scalar("t", DType.F32, init=1.0)
            i = k.loop(64)
            with k.if_(t > 0.0):  # true for the init, not for any caller
                a[i] = a[i] + 1.0

        kern = build("init_guard_probe", body, default_len=64)
        info = AnalysisManager().get(GuardRangePass, kern)
        assert info.verdicts == {}
        assert info.init_verdicts == {0: True}
        assert info.fold_of(next(iter(kern.stmts()))) is None

    def test_folded_source_differs_but_results_bit_identical(self, monkeypatch):
        kern = _fold_probe()
        monkeypatch.delenv("REPRO_RANGES", raising=False)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        ck1 = get_compiled(kern, "scalar")
        assert "if True:" in ck1.source and "if False:" in ck1.source
        bufs1 = make_buffers(kern, seed=3)
        r1 = simcompile._execute(ck1, kern, bufs1, None, None)

        monkeypatch.setenv("REPRO_RANGES", "0")
        clear_compile_cache()
        ck0 = get_compiled(kern, "scalar")
        assert ck0.source != ck1.source
        assert "if True:" not in ck0.source
        bufs0 = make_buffers(kern, seed=3)
        r0 = simcompile._execute(ck0, kern, bufs0, None, None)

        monkeypatch.delenv("REPRO_RANGES", raising=False)
        ref_bufs = make_buffers(kern, seed=3)
        ref = run_scalar_interpreted(kern, ref_bufs)
        assert bit_identical(ref, ref_bufs, r1, bufs1)
        assert bit_identical(ref, ref_bufs, r0, bufs0)
        # Folding must keep the guard-statistics bookkeeping intact.
        assert r1.guard_probs == {0: 1.0, 1: 0.0}

    def test_vector_tier_folds_and_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        kern = _fold_probe()
        plan = vectorize_loop(kern, ARMV8_NEON)
        bufs = make_buffers(kern, seed=5)
        got = run_vector(plan, bufs)
        ref_bufs = make_buffers(kern, seed=5)
        monkeypatch.setenv("REPRO_COMPILE", "0")
        ref = run_vector(plan, ref_bufs)
        for name in bufs:
            np.testing.assert_array_equal(bufs[name], ref_bufs[name])
        for name in got.scalars:
            np.testing.assert_array_equal(
                np.asarray(got.scalars[name]), np.asarray(ref.scalars[name])
            )


# ---------------------------------------------------------------------------
# Native tier: unguarded gathers, contract dispatch, shift elision
# ---------------------------------------------------------------------------


def _gather_kernel():
    """vag at SMALL dims: a contract-proven gather."""
    for kern in SUITE:
        if kern.name == "vag":
            return kern
    raise AssertionError("vag missing from suite")


def _native_meta(kernel):
    fp = simcompile._cache_fp(kernel)
    tc = native.find_toolchain()
    mod = native._attach(kernel, fp, tc, native._native_fingerprint(fp, tc))
    assert isinstance(mod, native._NativeModule), getattr(mod, "reason", mod)
    return mod.meta


@needs_cc
class TestNativeElision:
    @pytest.fixture(autouse=True)
    def _ranges_on(self, monkeypatch):
        # This class pins down the default-on elision behavior; a
        # REPRO_RANGES=0 outer environment (the CI parity leg runs the
        # suite exactly that way) must not flip its expectations.
        # Tests that cover the opt-out re-set the variable themselves.
        monkeypatch.delenv("REPRO_RANGES", raising=False)

    def test_gather_kernel_elides_and_matches_interpreter(self, monkeypatch):
        kern = _gather_kernel()
        meta = _native_meta(kern)
        assert meta["elided"]["gathers"] >= 1
        ck = get_compiled(kern)
        assert ck.mode == "native"
        bufs = make_buffers(kern, seed=2)
        got = simcompile._execute(ck, kern, bufs, None, None)
        ref_bufs = make_buffers(kern, seed=2)
        ref = run_scalar_interpreted(kern, ref_bufs)
        assert bit_identical(ref, ref_bufs, got, bufs)

    def test_ranges_off_native_bit_identical(self, monkeypatch):
        kern = _gather_kernel()
        ck1 = get_compiled(kern)
        bufs1 = make_buffers(kern, seed=4)
        r1 = simcompile._execute(ck1, kern, bufs1, None, None)

        monkeypatch.setenv("REPRO_RANGES", "0")
        clear_compile_cache()
        native.clear_attached()
        ck0 = get_compiled(kern)
        assert ck0.mode == "native"
        bufs0 = make_buffers(kern, seed=4)
        r0 = simcompile._execute(ck0, kern, bufs0, None, None)
        assert bit_identical(r1, bufs1, r0, bufs0)

    def test_adversarial_contents_route_to_guarded_body(self):
        """A caller-mutated index array violates the data contract; the
        runtime scan must reject the fast body, and the guarded body
        must stay bit-identical with the interpreter (wrap-legal
        negative indices alias valid elements in every tier)."""
        kern = _gather_kernel()
        ck = get_compiled(kern)
        assert ck.mode == "native"
        idx_name = [n for n, d in kern.arrays.items() if d.dtype.is_int][0]
        bufs = make_buffers(kern, seed=6)
        bufs[idx_name][0] = -1  # in [-extent, 0): wrap-legal, not contract
        ref_bufs = copy_buffers(bufs)
        got = simcompile._execute(ck, kern, bufs, None, None)
        ref = run_scalar_interpreted(kern, ref_bufs)
        assert bit_identical(ref, ref_bufs, got, bufs)

    def test_out_of_window_contents_still_fault(self):
        kern = _gather_kernel()
        ck = get_compiled(kern)
        bufs = make_buffers(kern, seed=6)
        idx_name = [n for n, d in kern.arrays.items() if d.dtype.is_int][0]
        bufs[idx_name][0] = 10**6
        with pytest.raises(native.NativeError):
            simcompile._execute(ck, kern, bufs, None, None)

    def test_shift_wrapper_elision(self):
        def body(k):
            a = k.array("a", dtype=DType.I32, extents=(64,))
            b = k.array("b", dtype=DType.I32, extents=(64,))
            i = k.loop(64)
            a[i] = b[i] >> 2

        kern = build("shift_probe", body, default_len=64)
        info = AnalysisManager().get(GuardRangePass, kern)
        assert info.shift_total == 1 and info.shifts_proven == 1
        meta = _native_meta(kern)
        assert meta["elided"]["shifts"] >= 1
        ck = get_compiled(kern)
        assert ck.mode == "native"
        bufs = make_buffers(kern, seed=1)
        got = simcompile._execute(ck, kern, bufs, None, None)
        ref_bufs = make_buffers(kern, seed=1)
        ref = run_scalar_interpreted(kern, ref_bufs)
        assert bit_identical(ref, ref_bufs, got, bufs)

    def test_folded_guard_counts_in_meta(self):
        meta = _native_meta(_fold_probe())
        assert meta["elided"]["folded_guards"] == 2

    def test_store_only_scatter_keeps_guarded_body(self):
        """Profitability gate: a proven scatter whose store is not the
        read-modify-write partner of an elided load keeps the plain
        guarded body (no dispatcher, no contract scan) — the static
        proof itself is unaffected by the codegen decision."""
        for kern in SUITE:
            if kern.name == "vas":
                break
        else:
            raise AssertionError("vas missing from suite")
        info = AnalysisManager().get(BoundsCheckPass, kern)
        assert info.gathers_proven >= 1
        meta = _native_meta(kern)
        assert meta["elided"]["gathers"] == 0

    def test_rmw_scatter_still_dispatches(self):
        """s141 scatters into the array it gathers from at the same
        index — the store hits a resident line, so the cost model keeps
        the dispatcher."""
        for kern in SUITE:
            if kern.name == "s141":
                break
        else:
            raise AssertionError("s141 missing from suite")
        meta = _native_meta(kern)
        assert meta["elided"]["gathers"] >= 2
