"""Per-category report tests."""

import pytest

from repro.costmodel import LLVMLikeCostModel, RatedSpeedupModel
from repro.experiments import (
    ARM_LLV,
    build_dataset,
    category_report,
    worst_categories,
)
from repro.fitting import NonNegativeLeastSquares


@pytest.fixture(scope="module")
def ds():
    return build_dataset(ARM_LLV)


def test_rows_cover_big_categories(ds):
    rows = category_report(ds.samples, LLVMLikeCostModel())
    cats = {r["category"] for r in rows}
    assert {"control-flow", "control-loops", "reductions"} <= cats


def test_min_size_respected(ds):
    rows = category_report(ds.samples, LLVMLikeCostModel(), min_size=10)
    assert all(r["n"] >= 10 for r in rows)


def test_pearson_only_for_large_groups(ds):
    rows = category_report(ds.samples, LLVMLikeCostModel(), min_size=3)
    for r in rows:
        if r["n"] < 5:
            assert "pearson" not in r


def test_counts_sum_to_at_most_suite(ds):
    rows = category_report(ds.samples, LLVMLikeCostModel(), min_size=1)
    assert sum(r["n"] for r in rows) == len(ds.samples)


def test_fitted_model_beats_baseline_in_most_categories(ds):
    base_rows = {
        r["category"]: r
        for r in category_report(ds.samples, LLVMLikeCostModel())
    }
    fitted = RatedSpeedupModel(NonNegativeLeastSquares()).fit(ds.samples)
    fit_rows = {r["category"]: r for r in category_report(ds.samples, fitted)}
    better = sum(
        1
        for cat in base_rows
        if fit_rows[cat]["rmse"] <= base_rows[cat]["rmse"]
    )
    assert better >= len(base_rows) * 0.6


def test_worst_categories(ds):
    worst = worst_categories(ds.samples, LLVMLikeCostModel(), k=2)
    assert len(worst) == 2
    rows = {r["category"]: r for r in category_report(ds.samples, LLVMLikeCostModel())}
    assert rows[worst[0]]["rmse"] >= rows[worst[1]]["rmse"]
