"""Cost-aware sweep scheduling (repro.pipeline.build)."""

import numpy as np

from repro.experiments import DatasetSpec
from repro.pipeline import (
    DatasetBuildStats,
    MeasurementCache,
    choose_strategy,
    estimate_kernel_work,
    measure_suite,
)
from repro.pipeline.build import POOL_SPAWN_WORK
from repro.tsvc import get_kernel

SPEC = DatasetSpec("armv8-neon", "llv")


def cpu_count(monkeypatch, n):
    import repro.pipeline.build as build_mod

    monkeypatch.setattr(build_mod.os, "cpu_count", lambda: n)


class TestChooseStrategy:
    def test_single_worker_is_serial(self, monkeypatch):
        cpu_count(monkeypatch, 8)
        d = choose_strategy([1e9] * 100, workers=1)
        assert d.strategy == "serial" and d.workers == 1

    def test_single_task_is_serial(self, monkeypatch):
        cpu_count(monkeypatch, 8)
        d = choose_strategy([1e9], workers=8)
        assert d.strategy == "serial"

    def test_one_cpu_host_is_serial(self, monkeypatch):
        """The regression this satellite fixes: a pool on a 1-CPU host
        only adds spawn and pickle overhead."""
        cpu_count(monkeypatch, 1)
        d = choose_strategy([1e9] * 100, workers=4)
        assert d.strategy == "serial"
        assert d.reason == "cpu_count is 1"

    def test_small_work_stays_serial(self, monkeypatch):
        cpu_count(monkeypatch, 8)
        d = choose_strategy([10.0] * 100, workers=4)
        assert d.strategy == "serial"
        assert "below pool overhead" in d.reason

    def test_large_work_uses_pool(self, monkeypatch):
        cpu_count(monkeypatch, 8)
        work = [POOL_SPAWN_WORK] * 64
        d = choose_strategy(work, workers=4)
        assert d.strategy == "pool" and d.workers == 4
        assert 1 <= d.chunksize <= len(work) // d.workers
        assert d.estimated_work == sum(work)

    def test_faults_force_pool_despite_small_work(self, monkeypatch):
        """Injected faults must land in real worker processes."""
        cpu_count(monkeypatch, 1)
        d = choose_strategy([10.0] * 8, workers=4, faults_active=True)
        assert d.strategy == "pool"
        assert d.reason == "fault plan active"

    def test_timeout_forces_pool(self, monkeypatch):
        """Only a worker process can be killed mid-kernel."""
        cpu_count(monkeypatch, 1)
        d = choose_strategy([10.0] * 8, workers=2, timeout=5.0)
        assert d.strategy == "pool"
        assert d.reason == "per-kernel timeout set"

    def test_faults_respect_explicit_serial(self, monkeypatch):
        """An explicit workers=1 request is never overridden."""
        cpu_count(monkeypatch, 8)
        d = choose_strategy([10.0] * 8, workers=1, faults_active=True)
        assert d.strategy == "serial" and d.workers == 1

    def test_workers_capped_at_tasks(self, monkeypatch):
        cpu_count(monkeypatch, 16)
        d = choose_strategy([1e9] * 3, workers=16, timeout=1.0)
        assert d.workers <= 3


def test_estimate_guarded_costs_more():
    """Guard-probability estimation dominates a kernel's measurement
    cost; the estimate must reflect it."""
    plain = get_kernel("s000")
    guarded = get_kernel("s253")
    assert estimate_kernel_work(guarded) > estimate_kernel_work(plain)
    assert estimate_kernel_work(plain) > 0


class TestBuildStats:
    def test_sweep_records_decision(self, tmp_path):
        stats = DatasetBuildStats()
        cache = MeasurementCache(root=tmp_path, enabled=False)
        samples, failures = measure_suite(
            SPEC, workers=2, cache=cache, stats=stats
        )
        assert stats.total_kernels == len(samples) + len(failures)
        assert stats.cached == 0
        assert stats.measured == stats.total_kernels
        assert stats.strategy in ("serial", "pool")
        assert stats.reason
        assert stats.estimated_work > 0

    def test_fully_cached_sweep_is_none(self, tmp_path):
        cache = MeasurementCache(root=tmp_path)
        measure_suite(SPEC, workers=1, cache=cache)
        stats = DatasetBuildStats()
        measure_suite(SPEC, workers=1, cache=cache, stats=stats)
        assert stats.strategy == "none"
        assert stats.cached == stats.total_kernels
        assert stats.measured == 0

    def test_scheduling_does_not_change_results(self, tmp_path, monkeypatch):
        """The decision affects time, never values: forcing the pool via
        a fault-free timeout must stay bit-identical to serial."""
        cache = MeasurementCache(root=tmp_path, enabled=False)
        serial, sf = measure_suite(SPEC, workers=1, cache=cache)
        stats = DatasetBuildStats()
        pooled, pf = measure_suite(
            SPEC, workers=2, cache=cache, timeout=300.0, stats=stats
        )
        assert stats.strategy == "pool"
        assert sf == pf
        assert [s.name for s in serial] == [s.name for s in pooled]
        for a, b in zip(serial, pooled):
            assert a.measured_speedup == b.measured_speedup
            assert np.array_equal(a.vector_features, b.vector_features)
