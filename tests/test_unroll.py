"""Loop unrolling tests: structure and functional equivalence."""

import pytest

from repro.ir import Affine, DType, ScalarAssign
from repro.sim.executor import make_buffers, run_scalar
from repro.vectorize import UnrollError, unroll

from tests.helpers import assert_buffers_close, build, copy_buffers


def test_structure():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = b[i] + 1.0

    u = unroll(build("t", body), 4)
    assert u.inner.trip == 25
    assert len(u.body) == 4
    # Copy u's store subscript is 4*i + u.
    for copy_idx, stmt in enumerate(u.body):
        assert stmt.subscript == (Affine((4,), copy_idx),)


def test_outer_loop_untouched():
    def body(k):
        aa = k.array2("aa")
        i = k.loop(16)
        j = k.loop(16)
        aa[i, j] = aa[i, j] * 2.0

    u = unroll(build("t", body), 2)
    assert u.loops[0].trip == 16
    assert u.loops[1].trip == 8


def test_private_scalars_renamed():
    def body(k):
        a, b = k.arrays("a", "b")
        t = k.scalar("t")
        i = k.loop(100)
        t.set(a[i] + b[i])
        a[i] = t * t

    u = unroll(build("t", body), 2)
    names = {s.name for s in u.body if isinstance(s, ScalarAssign)}
    assert names == {"t__u0", "t__u1"}
    assert "t__u0" in u.scalars and "t__u1" in u.scalars


def test_reduction_scalar_shared():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(100)
        s.set(s + a[i])

    u = unroll(build("t", body), 4)
    names = [s.name for s in u.body if isinstance(s, ScalarAssign)]
    assert names == ["s"] * 4


def test_indirect_subscript_shifted():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(100)
        a[i] = b[ip[i]]

    u = unroll(build("t", body), 2)
    from repro.ir import Indirect

    subs = [
        ld.subscript[0]
        for ld in u.loads()
        if ld.array == "b"
    ]
    assert Indirect("ip", Affine((2,), 0)) in subs
    assert Indirect("ip", Affine((2,), 1)) in subs


def test_iter_value_rewritten():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(100)
        a[i] = b[i] * (i + 0)

    u = unroll(build("t", body), 2)
    # Copy 1 must compute 2*i' + 1 as the value of i.
    assert "2" in str(u.body[1])


@pytest.mark.parametrize("factor", [2, 4, 5])
def test_functional_equivalence(factor):
    def body(k):
        a, b, c = k.arrays("a", "b", "c", )
        t = k.scalar("t")
        s = k.scalar("s")
        i = k.loop(120)
        t.set(b[i] * c[i])
        a[i] = t + b[i - 1]
        s.set(s + a[i])

    kern = build("t", body)
    u = unroll(kern, factor)
    bufs1 = make_buffers(kern, seed=1)
    bufs2 = copy_buffers(bufs1)
    r1 = run_scalar(kern, bufs1)
    r2 = run_scalar(u, bufs2)
    assert_buffers_close(bufs1, bufs2, context=f"unroll x{factor}")
    assert float(r1.scalars["s"]) == pytest.approx(float(r2.scalars["s"]), rel=1e-4)


def test_guarded_body_equivalence():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(64)
        with k.if_(b[i] > 0.0):
            a[i] = b[i] * 2.0
        with k.else_():
            a[i] = -b[i]

    kern = build("t", body)
    u = unroll(kern, 4)
    bufs1 = make_buffers(kern, seed=2)
    bufs2 = copy_buffers(bufs1)
    run_scalar(kern, bufs1)
    run_scalar(u, bufs2)
    assert_buffers_close(bufs1, bufs2, context="guarded unroll")


def test_factor_must_divide():
    def body(k):
        a = k.array("a")
        i = k.loop(100)
        a[i] = a[i] + 1.0

    with pytest.raises(UnrollError, match="divisible"):
        unroll(build("t", body), 3)


def test_factor_must_be_at_least_two():
    def body(k):
        a = k.array("a")
        i = k.loop(100)
        a[i] = a[i] + 1.0

    with pytest.raises(UnrollError):
        unroll(build("t", body), 1)
