"""Vector code generation tests: target-specific lowering decisions."""

from repro.codegen import lower_vector
from repro.ir import DType
from repro.targets import ARMV8_NEON, GENERIC_IR, X86_AVX2
from repro.targets.classes import IClass
from repro.vectorize import vectorize_loop

from tests.helpers import build


def vector_counts(body_fn, target, vf=None):
    kern = build("t", body_fn)
    plan = vectorize_loop(kern, target, vf)
    assert not hasattr(plan, "reason"), f"unexpected failure: {plan}"
    stream = lower_vector(plan, target)
    return stream, stream.counts()


def test_contiguous_packed_ops():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = b[i] + 1.0

    stream, counts = vector_counts(body, ARMV8_NEON)
    assert counts == {IClass.LOAD: 1, IClass.ADD: 1, IClass.STORE: 1}
    assert all(ins.lanes == 4 for ins in stream.body)
    assert stream.elems_per_iter == 4
    assert stream.iters == 64


def test_reverse_access_adds_shuffle():
    def body(k):
        a, b = k.arrays("a", "b")
        n = 256
        i = k.loop(n)
        a[i] = b[(n - 1) - i] + 1.0

    _, counts = vector_counts(body, ARMV8_NEON)
    assert counts[IClass.SHUFFLE] >= 1


def test_small_stride_interleaved():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(128)
        a[i] = b[2 * i] + 1.0

    _, counts = vector_counts(body, ARMV8_NEON)
    # stride-2 load: 2 packed loads + 2 shuffles (ld2 idiom)
    assert counts[IClass.LOAD] == 2
    assert counts[IClass.SHUFFLE] == 2


def test_wide_stride_neon_scalarizes():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(128)
        a[i] = b[16 * i] + 1.0

    _, counts = vector_counts(body, ARMV8_NEON)
    assert counts[IClass.INSERT] == 4  # one insert per lane
    assert IClass.GATHER not in counts


def test_wide_stride_avx2_gathers():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(128)
        a[i] = b[16 * i] + 1.0

    _, counts = vector_counts(body, X86_AVX2)
    assert counts[IClass.GATHER] == 1
    assert IClass.INSERT not in counts


def test_indirect_load_neon_vs_avx2():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[i] = b[ip[i]] + 1.0

    _, neon = vector_counts(body, ARMV8_NEON)
    assert neon[IClass.INSERT] == 4
    assert neon[IClass.EXTRACT] == 4  # index extraction
    _, avx = vector_counts(body, X86_AVX2)
    assert avx[IClass.GATHER] == 1


def test_masked_store_neon_blend_store():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        with k.if_(b[i] > 0.0):
            a[i] = b[i] * 2.0

    _, counts = vector_counts(body, ARMV8_NEON)
    assert counts[IClass.BLEND] >= 1
    assert counts[IClass.LOAD] == 2  # data load + masked-store reload
    assert IClass.MASKSTORE not in counts


def test_masked_store_avx2_maskstore():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        with k.if_(b[i] > 0.0):
            a[i] = b[i] * 2.0

    _, counts = vector_counts(body, X86_AVX2)
    assert counts[IClass.MASKSTORE] == 1
    assert IClass.BLEND not in counts


def test_scatter_on_generic_ir():
    def body(k):
        a, b = k.arrays("a", "b")
        ip = k.array("ip", dtype=DType.I32)
        i = k.loop(256)
        a[ip[i]] = b[i]

    _, counts = vector_counts(body, GENERIC_IR)
    assert counts[IClass.SCATTER] == 1
    _, neon = vector_counts(body, ARMV8_NEON)
    assert IClass.SCATTER not in neon
    assert neon[IClass.EXTRACT] >= 4


def test_reduction_prologue_epilogue():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(256)
        s.set(s + a[i])

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV8_NEON)
    stream = lower_vector(plan, ARMV8_NEON)
    assert any(ins.iclass is IClass.BROADCAST for ins in stream.prologue)
    assert any(ins.iclass is IClass.REDUCE for ins in stream.epilogue)
    adds = [ins for ins in stream.body if ins.iclass is IClass.ADD]
    assert adds[0].carried  # vector accumulator recurrence


def test_invariant_load_hoisted_to_broadcast():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        i = k.loop(256)
        a[i] = b[i] + c[7]

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV8_NEON)
    stream = lower_vector(plan, ARMV8_NEON)
    assert any(ins.iclass is IClass.BROADCAST for ins in stream.prologue)


def test_exp_scalarized_on_hw_single_on_ir():
    from repro.ir import fexp

    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(256)
        a[i] = fexp(b[i])

    _, hw = vector_counts(body, ARMV8_NEON)
    assert hw[IClass.EXP] == 4
    assert hw[IClass.EXTRACT] == 4 and hw[IClass.INSERT] == 4
    _, ir = vector_counts(body, GENERIC_IR)
    assert ir[IClass.EXP] == 1
    assert IClass.EXTRACT not in ir


def test_remainder_recorded():
    def body(k):
        a, b = k.arrays("a", "b")
        i = k.loop(258)
        a[i] = b[i] + 1.0

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV8_NEON)
    stream = lower_vector(plan, ARMV8_NEON)
    assert stream.iters == 64
    assert stream.remainder == 2


def test_f64_halves_vf():
    def body(k):
        a = k.array("a", dtype=DType.F64)
        b = k.array("b", dtype=DType.F64)
        i = k.loop(256)
        a[i] = b[i] + 1.0

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV8_NEON)
    assert plan.vf == 2
    plan = vectorize_loop(kern, X86_AVX2)
    assert plan.vf == 4


def test_nested_mask_conjunction():
    def body(k):
        a, b, c = k.arrays("a", "b", "c")
        i = k.loop(256)
        with k.if_(b[i] > 0.0):
            with k.if_(c[i] > 0.0):
                a[i] = 1.0

    _, counts = vector_counts(body, X86_AVX2)
    assert counts[IClass.CMP] == 2
    assert counts[IClass.LOGIC] >= 1  # mask AND


def test_guarded_sum_blends_with_accumulator():
    def body(k):
        a = k.array("a")
        s = k.scalar("s")
        i = k.loop(256)
        with k.if_(a[i] > 0.0):
            s.set(s + a[i])

    kern = build("t", body)
    plan = vectorize_loop(kern, ARMV8_NEON)
    stream = lower_vector(plan, ARMV8_NEON)
    blends = [ins for ins in stream.body if ins.iclass is IClass.BLEND]
    assert blends, "if-converted reduction needs a blend"
    assert any(ins.carried for ins in blends)
