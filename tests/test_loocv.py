"""Cross-validation harness tests."""

import numpy as np
import pytest

from repro.costmodel import RatedSpeedupModel, SpeedupModel
from repro.fitting import LeastSquares, NonNegativeLeastSquares
from repro.validation import kfold_predictions, loocv_predictions
from repro.validation.loocv import fast_loocv_eligible, warm_nnls_eligible

from tests.test_costmodel import feat, mk_sample


def linear_truth_samples(n=25, seed=0):
    """Samples whose speedups are exactly linear in vector counts."""
    rng = np.random.default_rng(seed)
    w = {"load": 0.6, "add": 0.4, "mul": 0.3, "store": 0.2}
    out = []
    for i in range(n):
        counts = {k: float(rng.integers(1, 4)) for k in w}
        v = feat(**counts)
        speedup = sum(w[k] * counts[k] for k in w)
        out.append(
            mk_sample(name=f"s{i}", scalar=feat(load=1), vector=v, speedup=speedup)
        )
    return out


def test_loocv_exact_on_linear_truth():
    samples = linear_truth_samples()
    preds = loocv_predictions(
        lambda: SpeedupModel(
            LeastSquares(),
            feature_fn=lambda s: s.vector_features,
            clip_to_vf=False,
        ),
        samples,
    )
    measured = np.array([s.measured_speedup for s in samples])
    np.testing.assert_allclose(preds, measured, atol=1e-6)


def test_loocv_one_prediction_per_sample():
    samples = linear_truth_samples(12)
    preds = loocv_predictions(
        lambda: SpeedupModel(LeastSquares(), feature_fn=lambda s: s.vector_features),
        samples,
    )
    assert len(preds) == 12
    assert np.isfinite(preds).all()


def test_loocv_does_not_peek(monkeypatch):
    """The held-out sample must not be in any training fold."""
    samples = linear_truth_samples(8)
    seen = []

    class SpyModel:
        name = "spy"

        def fit(self, train):
            seen.append({s.name for s in train})
            return self

        def predict_speedup(self, s):
            return 1.0

    loocv_predictions(SpyModel, samples)
    for i, train_names in enumerate(seen):
        assert samples[i].name not in train_names
        assert len(train_names) == 7


def test_kfold_covers_everything():
    samples = linear_truth_samples(20)
    preds = kfold_predictions(
        lambda: SpeedupModel(
            LeastSquares(),
            feature_fn=lambda s: s.vector_features,
            clip_to_vf=False,
        ),
        samples,
        k=5,
    )
    assert np.isfinite(preds).all()
    measured = np.array([s.measured_speedup for s in samples])
    np.testing.assert_allclose(preds, measured, atol=1e-6)


def test_kfold_invalid_k():
    samples = linear_truth_samples(5)
    with pytest.raises(ValueError):
        kfold_predictions(lambda: SpeedupModel(LeastSquares()), samples, k=1)
    with pytest.raises(ValueError):
        kfold_predictions(lambda: SpeedupModel(LeastSquares()), samples, k=6)


def test_failed_fold_yields_nan():
    samples = linear_truth_samples(6)

    class FailingModel:
        name = "failing"

        def fit(self, train):
            from repro.fitting import FitError

            raise FitError("nope")

        def predict_speedup(self, s):  # pragma: no cover
            return 1.0

    preds = loocv_predictions(FailingModel, samples)
    assert np.isnan(preds).all()


# -- fast path (hat-matrix identity) ----------------------------------------


def l2_factories():
    """Every model shape the fast path claims to handle."""
    return [
        lambda: SpeedupModel(LeastSquares()),
        lambda: SpeedupModel(LeastSquares(), clip_to_vf=False),
        lambda: SpeedupModel(LeastSquares(ridge=0.25)),
        lambda: RatedSpeedupModel(LeastSquares()),
    ]


def test_eligibility_is_l2_only():
    assert fast_loocv_eligible(SpeedupModel(LeastSquares()))
    assert fast_loocv_eligible(RatedSpeedupModel(LeastSquares(ridge=1.0)))
    assert not fast_loocv_eligible(SpeedupModel(NonNegativeLeastSquares()))

    class NotAModel:
        name = "other"

    assert not fast_loocv_eligible(NotAModel())


@pytest.mark.parametrize("factory", l2_factories())
def test_fast_matches_naive_on_synthetic(factory):
    samples = linear_truth_samples(30, seed=3)
    fast = loocv_predictions(factory, samples)
    naive = loocv_predictions(factory, samples, fast=False)
    np.testing.assert_allclose(fast, naive, atol=1e-8)


@pytest.mark.parametrize("spec_name", ["arm", "x86"])
@pytest.mark.parametrize("factory", l2_factories())
def test_fast_matches_naive_on_suite(spec_name, factory):
    """Acceptance cross-check: identical to the refit loop on real data."""
    from repro.experiments import ARM_LLV, X86_SLP, build_dataset

    ds = build_dataset(ARM_LLV if spec_name == "arm" else X86_SLP)
    fast = loocv_predictions(factory, ds.samples)
    naive = loocv_predictions(factory, ds.samples, fast=False)
    assert np.isfinite(fast).all()
    np.testing.assert_allclose(fast, naive, atol=1e-8)


def test_fast_applies_vf_clipping():
    samples = linear_truth_samples(20, seed=1)
    preds = loocv_predictions(lambda: SpeedupModel(LeastSquares()), samples)
    vfs = np.array([float(s.vf) for s in samples])
    assert (preds <= vfs).all()
    assert (preds > 0).all()


def test_nnls_warm_start_matches_refit_loop():
    """The warm-start path must agree with the cold refit loop."""
    samples = linear_truth_samples(15, seed=2)
    preds = loocv_predictions(
        lambda: SpeedupModel(NonNegativeLeastSquares()), samples
    )
    naive = loocv_predictions(
        lambda: SpeedupModel(NonNegativeLeastSquares()), samples, fast=False
    )
    np.testing.assert_allclose(preds, naive, rtol=1e-9, atol=1e-9)


def test_nnls_eligibility():
    assert warm_nnls_eligible(SpeedupModel(NonNegativeLeastSquares()))
    assert not warm_nnls_eligible(SpeedupModel(LeastSquares()))
    assert not fast_loocv_eligible(SpeedupModel(NonNegativeLeastSquares()))


@pytest.mark.parametrize("spec_name", ["arm", "x86"])
def test_nnls_warm_optimal_on_suite(spec_name):
    """On real (rank-deficient) data the NNLS optimum can be non-unique,
    so equivalence is checked on fold *objectives*: every warm-certified
    solution must reach the cold Lawson–Hanson residual norm."""
    import scipy.optimize

    from repro.experiments import ARM_LLV, X86_SLP, build_dataset
    from repro.fitting.nnls import nnls_warm_start

    ds = build_dataset(ARM_LLV if spec_name == "arm" else X86_SLP)
    model = SpeedupModel(NonNegativeLeastSquares())
    X, y = model.training_data(ds.samples)
    w_full, _ = scipy.optimize.nnls(X, y)
    support = np.nonzero(w_full > 0.0)[0]
    mask = np.ones(len(y), dtype=bool)
    certified = 0
    for i in range(len(y)):
        mask[i] = False
        Xi, yi = X[mask], y[mask]
        w = nnls_warm_start(Xi, yi, support)
        mask[i] = True
        if w is None:
            continue
        certified += 1
        assert (w >= 0.0).all()
        _, rnorm_cold = scipy.optimize.nnls(Xi, yi)
        rnorm_warm = float(np.linalg.norm(Xi @ w - yi))
        assert rnorm_warm <= rnorm_cold + 1e-9 * (1.0 + rnorm_cold)
    # The point of warm-starting: nearly every fold keeps the active set.
    assert certified >= len(y) // 2

    fast = loocv_predictions(
        lambda: SpeedupModel(NonNegativeLeastSquares()), ds.samples
    )
    naive = loocv_predictions(
        lambda: SpeedupModel(NonNegativeLeastSquares()), ds.samples, fast=False
    )
    assert np.array_equal(np.isfinite(fast), np.isfinite(naive))


def test_fast_handles_unit_leverage_rows():
    """A sample with a unique feature direction has leverage ≈ 1; the
    fast path must hand it to the refit loop instead of dividing by 0."""
    samples = linear_truth_samples(12, seed=4)
    # One sample is the only user of the 'div' class.
    odd = mk_sample(
        name="unique", scalar=feat(load=1), vector=feat(div=5.0), speedup=1.5
    )
    mixed = samples + [odd]
    fast = loocv_predictions(
        lambda: SpeedupModel(
            LeastSquares(), feature_fn=lambda s: s.vector_features
        ),
        mixed,
    )
    naive = loocv_predictions(
        lambda: SpeedupModel(
            LeastSquares(), feature_fn=lambda s: s.vector_features
        ),
        mixed,
        fast=False,
    )
    np.testing.assert_allclose(fast, naive, atol=1e-8)


def test_fast_two_samples_minimum():
    samples = linear_truth_samples(2, seed=5)
    fast = loocv_predictions(lambda: SpeedupModel(LeastSquares()), samples)
    naive = loocv_predictions(
        lambda: SpeedupModel(LeastSquares()), samples, fast=False
    )
    np.testing.assert_allclose(fast, naive, atol=1e-8)
