"""Cross-validation harness tests."""

import numpy as np
import pytest

from repro.costmodel import SpeedupModel
from repro.fitting import LeastSquares
from repro.validation import kfold_predictions, loocv_predictions

from tests.test_costmodel import feat, mk_sample


def linear_truth_samples(n=25, seed=0):
    """Samples whose speedups are exactly linear in vector counts."""
    rng = np.random.default_rng(seed)
    w = {"load": 0.6, "add": 0.4, "mul": 0.3, "store": 0.2}
    out = []
    for i in range(n):
        counts = {k: float(rng.integers(1, 4)) for k in w}
        v = feat(**counts)
        speedup = sum(w[k] * counts[k] for k in w)
        out.append(
            mk_sample(name=f"s{i}", scalar=feat(load=1), vector=v, speedup=speedup)
        )
    return out


def test_loocv_exact_on_linear_truth():
    samples = linear_truth_samples()
    preds = loocv_predictions(
        lambda: SpeedupModel(
            LeastSquares(),
            feature_fn=lambda s: s.vector_features,
            clip_to_vf=False,
        ),
        samples,
    )
    measured = np.array([s.measured_speedup for s in samples])
    np.testing.assert_allclose(preds, measured, atol=1e-6)


def test_loocv_one_prediction_per_sample():
    samples = linear_truth_samples(12)
    preds = loocv_predictions(
        lambda: SpeedupModel(LeastSquares(), feature_fn=lambda s: s.vector_features),
        samples,
    )
    assert len(preds) == 12
    assert np.isfinite(preds).all()


def test_loocv_does_not_peek(monkeypatch):
    """The held-out sample must not be in any training fold."""
    samples = linear_truth_samples(8)
    seen = []

    class SpyModel:
        name = "spy"

        def fit(self, train):
            seen.append({s.name for s in train})
            return self

        def predict_speedup(self, s):
            return 1.0

    loocv_predictions(SpyModel, samples)
    for i, train_names in enumerate(seen):
        assert samples[i].name not in train_names
        assert len(train_names) == 7


def test_kfold_covers_everything():
    samples = linear_truth_samples(20)
    preds = kfold_predictions(
        lambda: SpeedupModel(
            LeastSquares(),
            feature_fn=lambda s: s.vector_features,
            clip_to_vf=False,
        ),
        samples,
        k=5,
    )
    assert np.isfinite(preds).all()
    measured = np.array([s.measured_speedup for s in samples])
    np.testing.assert_allclose(preds, measured, atol=1e-6)


def test_kfold_invalid_k():
    samples = linear_truth_samples(5)
    with pytest.raises(ValueError):
        kfold_predictions(lambda: SpeedupModel(LeastSquares()), samples, k=1)
    with pytest.raises(ValueError):
        kfold_predictions(lambda: SpeedupModel(LeastSquares()), samples, k=6)


def test_failed_fold_yields_nan():
    samples = linear_truth_samples(6)

    class FailingModel:
        name = "failing"

        def fit(self, train):
            from repro.fitting import FitError

            raise FitError("nope")

        def predict_speedup(self, s):  # pragma: no cover
            return 1.0

    preds = loocv_predictions(FailingModel, samples)
    assert np.isnan(preds).all()
