"""Kernel-compilation layer tests (repro.sim.compile).

The contract is *bit-identity* with the tree-walking interpreter —
buffer bytes, scalar dtypes and bits, guard probabilities, iteration
counts — across the whole TSVC suite, both codegen modes, and multiple
buffer seeds.  The interpreter stays the semantic oracle; the compiled
paths must never be observably different.
"""

import numpy as np
import pytest

from repro.analysis.framework.passmanager import default_manager
from repro.ir import fsqrt
from repro.sim import (
    CompileError,
    bit_identical,
    clear_compile_cache,
    clear_guard_prob_memo,
    compile_stats,
    compile_summary,
    estimate_guard_probs,
    get_compiled,
    kernel_fingerprint,
    make_buffers,
    run_scalar,
    run_scalar_compiled,
    run_scalar_interpreted,
)
from repro.sim import executor, ufuncs
from repro.sim.compile import _execute
from repro.tsvc import all_kernels

from tests.helpers import SMALL, build

SUITE = list(all_kernels(dims=SMALL))


def both_runs(kernel, seed, mode=None, iters=None):
    """(interpreter result+bufs, compiled result+bufs) on equal inputs."""
    ref_bufs = make_buffers(kernel, seed=seed)
    got_bufs = {k: v.copy() for k, v in ref_bufs.items()}
    ref = run_scalar_interpreted(kernel, ref_bufs, None, iters)
    if mode is None:
        got = run_scalar_compiled(kernel, got_bufs, None, iters)
    else:
        got = _execute(
            get_compiled(kernel, mode), kernel, got_bufs, None, iters
        )
    return ref, ref_bufs, got, got_bufs


# -- suite-wide bit-identity (the acceptance property) -----------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_suite_bit_identity_auto(seed):
    """Every TSVC kernel compiles (vector or scalar) and its full-trip
    execution is indistinguishable from the interpreter's."""
    mismatched, refused = [], []
    for kernel in SUITE:
        try:
            ref, ref_bufs, got, got_bufs = both_runs(kernel, seed)
        except CompileError:
            refused.append(kernel.name)
            continue
        if not bit_identical(ref, ref_bufs, got, got_bufs):
            mismatched.append(kernel.name)
    assert mismatched == []
    assert refused == []


@pytest.mark.parametrize("seed", [0, 1])
def test_suite_bit_identity_forced_scalar(seed):
    """Straight-line scalar codegen alone must also match, even for
    kernels the auto path would run as vector closures."""
    mismatched = []
    for kernel in SUITE:
        ref, ref_bufs, got, got_bufs = both_runs(kernel, seed, mode="scalar")
        if not bit_identical(ref, ref_bufs, got, got_bufs):
            mismatched.append(kernel.name)
    assert mismatched == []


def test_suite_forced_vector_where_eligible():
    """Forcing the whole-loop closure on every kernel that accepts it
    must match the interpreter; most of the suite must be eligible."""
    vector, mismatched = 0, []
    for kernel in SUITE:
        try:
            ck = get_compiled(kernel, "vector")
        except CompileError:
            continue
        vector += 1
        ref_bufs = make_buffers(kernel, seed=0)
        got_bufs = {k: v.copy() for k, v in ref_bufs.items()}
        ref = run_scalar_interpreted(kernel, ref_bufs)
        got = _execute(ck, kernel, got_bufs, None, None)
        if not bit_identical(ref, ref_bufs, got, got_bufs):
            mismatched.append(kernel.name)
    assert mismatched == []
    assert vector >= 50, f"only {vector} kernels vector-eligible"


def test_truncated_trips_bit_identity():
    """max_inner_iters must truncate both paths identically — including
    an odd count that divides nothing evenly."""
    mismatched = []
    for kernel in SUITE:
        try:
            ref, ref_bufs, got, got_bufs = both_runs(kernel, 0, iters=17)
        except CompileError:
            continue
        if not bit_identical(ref, ref_bufs, got, got_bufs):
            mismatched.append(kernel.name)
    assert mismatched == []


def test_guard_prob_estimates_match_interpreter(monkeypatch):
    """estimate_guard_probs routes through run_scalar; toggling the
    compiler off must not change a single probability."""
    guarded = [k for k in SUITE if k.name in ("s253", "s258", "s271", "s161")]
    assert guarded
    compiled = {}
    for kernel in guarded:
        clear_guard_prob_memo()
        compiled[kernel.name] = estimate_guard_probs(kernel)
    monkeypatch.setenv("REPRO_COMPILE", "0")
    for kernel in guarded:
        clear_guard_prob_memo()
        assert estimate_guard_probs(kernel) == compiled[kernel.name]


# -- routing and the REPRO_COMPILE switch ------------------------------------


def test_run_scalar_uses_compiled_path_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILE", raising=False)
    kernel = SUITE[0]
    before = compile_stats().runs_compiled
    run_scalar(kernel, make_buffers(kernel, seed=0))
    assert compile_stats().runs_compiled == before + 1


def test_disable_env_restores_interpreter(monkeypatch):
    """REPRO_COMPILE=0 must leave the compiler untouched and still
    produce the interpreter's exact results."""
    kernel = SUITE[0]
    monkeypatch.setenv("REPRO_COMPILE", "0")
    before = compile_stats().runs_compiled
    bufs = make_buffers(kernel, seed=0)
    got = run_scalar(kernel, bufs)
    assert compile_stats().runs_compiled == before
    ref_bufs = make_buffers(kernel, seed=0)
    ref = run_scalar_interpreted(kernel, ref_bufs)
    assert bit_identical(ref, ref_bufs, got, bufs)


# -- fingerprint-keyed caching -----------------------------------------------


def small_kernel(name="ck", scale=2.0):
    def body(k):
        a = k.array("a", extents=(64,))
        b = k.array("b", extents=(64,))
        i = k.loop(64)
        a[i] = b[i] * scale

    return build(name, body)


def test_fingerprint_stable_across_objects():
    """Two builds of the same source share one fingerprint, so the
    second get_compiled is a cache hit, not a rebuild."""
    clear_compile_cache()
    k1, k2 = small_kernel(), small_kernel()
    assert k1 is not k2
    assert kernel_fingerprint(k1) == kernel_fingerprint(k2)
    get_compiled(k1)
    hits = compile_stats().cache_hits
    assert get_compiled(k2) is get_compiled(k1)
    assert compile_stats().cache_hits > hits


def test_fingerprint_invalidation_on_mutation():
    """A semantically different kernel — same name, one constant changed
    — must map to a different fingerprint and a fresh build."""
    clear_compile_cache()
    base, mutated = small_kernel(scale=2.0), small_kernel(scale=3.0)
    assert kernel_fingerprint(base) != kernel_fingerprint(mutated)
    ck_base = get_compiled(base)
    misses = compile_stats().cache_misses
    ck_mut = get_compiled(mutated)
    assert compile_stats().cache_misses > misses
    assert ck_base is not ck_mut
    # And each compiled form computes its own kernel's semantics.
    bufs_b = make_buffers(base, seed=0)
    bufs_m = {k: v.copy() for k, v in bufs_b.items()}
    _execute(ck_base, base, bufs_b, None, None)
    _execute(ck_mut, mutated, bufs_m, None, None)
    assert not np.array_equal(bufs_b["a"], bufs_m["a"])


def test_clear_cache_forces_rebuild():
    clear_compile_cache()
    kernel = small_kernel()
    get_compiled(kernel)
    misses = compile_stats().cache_misses
    clear_compile_cache()
    get_compiled(kernel)
    assert compile_stats().cache_misses > misses


def test_compile_summary_shape():
    summary = compile_summary()
    for key in (
        "enabled",
        "kernels_vector",
        "kernels_scalar",
        "kernels_demoted",
        "kernels_refused",
        "cache_hits",
        "cache_misses",
        "runs_compiled",
        "runs_vector",
        "cached_fns",
    ):
        assert key in summary


# -- shared ufunc tables and the sqrt domain guard ---------------------------


def test_ufunc_tables_are_shared():
    """Interpreter and compiler must dispatch through the *same* op
    tables — a semantic fix in one path cannot silently miss the other."""
    assert executor._BINOPS is ufuncs.BINOPS
    assert executor._UNOPS is ufuncs.UNOPS
    assert executor._CMPS is ufuncs.CMPS


def test_sqrt_guard_emits_remark():
    """A sqrt over negative inputs must execute as sqrt(|x|) (the C
    reference links -ffast-math) *and* leave a diagnostics remark."""

    def body(k):
        a = k.array("a", extents=(64,))
        b = k.array("b", extents=(64,))
        i = k.loop(64)
        a[i] = fsqrt(b[i])

    kernel = build("sqrtneg", body)
    bufs = make_buffers(kernel, seed=0)
    assert (bufs["b"] < 0).any()  # make_buffers spans [-1, 1]
    expected = np.sqrt(np.abs(bufs["b"])).astype(np.float32)
    run_scalar(kernel, bufs)
    np.testing.assert_array_equal(bufs["a"], expected)
    remarks = default_manager().diagnostics.remarks(
        kernel="sqrtneg", pass_name="executor"
    )
    assert any("sqrt domain guard fired" in r.message for r in remarks)
