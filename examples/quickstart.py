"""Quickstart: build a kernel, vectorize it, and measure the speedup.

Run:  python examples/quickstart.py
"""

from repro import (
    KernelBuilder,
    get_target,
    lower_scalar,
    lower_vector,
    make_buffers,
    measure_kernel,
    run_scalar,
    run_vector,
    vectorize_loop,
)

# -- 1. Describe a loop with the builder DSL ---------------------------------
# The kernel is TSVC-style saxpy: a[i] += alpha * b[i].

k = KernelBuilder("saxpy")
a, b = k.arrays("a", "b")
alpha = k.param("alpha", value=2.5)
i = k.loop(32000)
a[i] = a[i] + alpha * b[i]
kernel = k.build()

print("== the kernel ==")
print(kernel)

# -- 2. Vectorize it for the NEON machine model --------------------------------

arm = get_target("arm")
plan = vectorize_loop(kernel, arm)
print(f"\n== vectorization ==\n{plan}")

# -- 3. Check the functional equivalence the whole study relies on -------------

bufs_scalar = make_buffers(kernel, seed=1)
bufs_vector = {name: arr.copy() for name, arr in bufs_scalar.items()}
run_scalar(kernel, bufs_scalar)
run_vector(plan, bufs_vector)
max_diff = float(abs(bufs_scalar["a"] - bufs_vector["a"]).max())
print(f"\nscalar vs vectorized execution: max |diff| = {max_diff:.2e}")

# -- 4. Look at the machine code the two versions become -----------------------

print("\n== scalar instruction stream (one iteration) ==")
print(lower_scalar(kernel, arm).dump())
print("\n== vector instruction stream (one VF=4 iteration) ==")
print(lower_vector(plan, arm).dump())

# -- 5. Measure on the timing model ---------------------------------------------

sample = measure_kernel(kernel, arm)
print(f"\n== measurement ==\n{sample}")
print(
    f"scalar: {sample.scalar_breakdown.per_iter:.2f} cycles/elem "
    f"({sample.scalar_breakdown.bound}-bound)"
)
print(
    f"vector: {sample.vector_breakdown.per_iter / sample.vf:.2f} cycles/elem "
    f"({sample.vector_breakdown.bound}-bound)"
)
