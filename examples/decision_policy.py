"""Deploy a fitted cost model as the compiler's vectorization decision.

The end use-case of the paper: the compiler vectorizes exactly the
loops the cost model predicts beneficial.  This script compares the
total TSVC runtime under the static model's decisions, the fitted
model's decisions (honestly, via LOOCV — each loop decided by a model
that never saw it), and the reference policies.

Run:  python examples/decision_policy.py
"""

import numpy as np

from repro import LLVMLikeCostModel, RatedSpeedupModel, build_dataset
from repro.costmodel import predict_all
from repro.experiments import ARM_LLV
from repro.experiments.reporting import ascii_table
from repro.fitting import NonNegativeLeastSquares
from repro.validation import (
    always_cycles,
    confusion,
    loocv_predictions,
    never_cycles,
    oracle_cycles,
    policy_cycles,
)

ds = build_dataset(ARM_LLV)
samples = ds.samples
measured = ds.measured
print(ds.summary(), "\n")

static_preds = predict_all(LLVMLikeCostModel(), samples)
fitted_preds = loocv_predictions(
    lambda: RatedSpeedupModel(NonNegativeLeastSquares()), samples
)

policies = [
    never_cycles(samples),
    always_cycles(samples),
    policy_cycles(samples, static_preds, name="static model decisions"),
    policy_cycles(samples, fitted_preds, name="fitted model decisions (LOOCV)"),
    oracle_cycles(samples),
]
oracle = policies[-1].cycles
rows = [
    {
        "policy": p.name,
        "cycles/elem (suite)": round(p.cycles, 1),
        "vs oracle": f"+{100 * (p.cycles / oracle - 1):.1f}%",
        "loops vectorized": f"{p.vectorized}/{p.total}",
    }
    for p in policies
]
print(ascii_table(rows, title="Suite runtime under each decision policy"))

static_c = confusion(static_preds, measured)
fitted_c = confusion(fitted_preds, measured)
print(
    f"\nfalse decisions: static model {static_c.false_predictions} "
    f"({static_c}), fitted model {fitted_c.false_predictions} ({fitted_c})"
)

# Which loops does the fitted model save us from?
saved = [
    s.name
    for s, p_static, p_fit in zip(samples, static_preds, fitted_preds)
    if p_static > 1.0 >= s.measured_speedup and not (np.nan_to_num(p_fit) > 1.0)
]
if saved:
    print(
        "\nloops the static model would have slowed down but the fitted "
        f"model keeps scalar: {', '.join(saved)}"
    )
