"""Target comparison: the same TSVC loops on NEON vs AVX2.

Shows why per-target cost models matter: verdicts and payoffs differ —
a distance-4 recurrence is legal at VF 4 but not VF 8, NEON scalarizes
gathers that AVX2 runs in hardware, masked stores are cheap on AVX2
and a load+blend+store dance on NEON.

Run:  python examples/compare_targets.py
"""

from repro import get_target, measure_kernel
from repro.experiments.reporting import ascii_table
from repro.tsvc import get_kernel
from repro.vectorize import VectorizationFailure

KERNELS = [
    ("s000", "plain streaming add"),
    ("vbor", "high arithmetic intensity"),
    ("vag", "gather (indirect load)"),
    ("s491", "scatter (indirect store)"),
    ("s271", "guarded update (masked store)"),
    ("s1221", "distance-4 recurrence"),
    ("s424", "distance-4 equivalenced store"),
    ("s176", "small convolution (2-D nest)"),
    ("s451", "transcendental call"),
    ("vsumr", "sum reduction"),
]

targets = [get_target("arm"), get_target("x86")]
rows = []
for name, what in KERNELS:
    kernel = get_kernel(name)
    row = {"kernel": name, "pattern": what}
    for target in targets:
        result = measure_kernel(kernel, target)
        if isinstance(result, VectorizationFailure):
            row[target.name] = f"— ({result.reason})"
        else:
            row[target.name] = (
                f"{result.speedup:.2f}x @VF{result.vf} "
                f"[{result.vector_breakdown.bound}]"
            )
    rows.append(row)

print(ascii_table(rows, title="Measured vectorization speedup by target"))
print(
    "\nNote the target-dependent rows: s1221/s424 vectorize on NEON "
    "(VF 4 fits inside the distance-4 dependence) but not on AVX2 "
    "(VF 8 does not); the gather kernel pays lane-by-lane inserts on "
    "NEON but a single hardware gather on AVX2."
)
