"""Extension study: the cost-model landscape on a hypothetical SVE core.

The paper evaluates NEON (ARMv8); SVE was arriving as it was written.
This script re-runs the study on a 256-bit SVE-class machine model
(hardware gather/scatter, native predication) and asks two questions:

1. how do measured speedups shift when the lanes double but memory
   bandwidth does not (more kernels go bandwidth-bound)?
2. does a cost model fitted on NEON measurements transfer to SVE, or
   does each target need its own fit (the paper's premise)?

Run:  python examples/sve_outlook.py
"""

import numpy as np

from repro import RatedSpeedupModel, build_dataset, get_target
from repro.costmodel import predict_all
from repro.experiments import ARM_LLV, DatasetSpec
from repro.experiments.reporting import ascii_table
from repro.fitting import NonNegativeLeastSquares
from repro.validation import evaluate

neon_ds = build_dataset(ARM_LLV)
sve_ds = build_dataset(DatasetSpec("armv9-sve", "llv"))

print(neon_ds.summary())
print(sve_ds.summary())

# -- 1. per-pattern shift -----------------------------------------------------

rows = []
for name in ("s000", "vbor", "vag", "s491", "s271", "s2101", "vsumr", "s451"):
    row = {"kernel": name}
    for ds, label in ((neon_ds, "NEON (VF4)"), (sve_ds, "SVE (VF8)")):
        try:
            s = ds.sample(name)
            row[label] = f"{s.measured_speedup:.2f}x [{s.vector_bound}]"
        except KeyError:
            row[label] = "—"
    rows.append(row)
print()
print(ascii_table(rows, title="Measured speedup: NEON vs hypothetical SVE"))

neon_mem = sum(1 for s in neon_ds.samples if s.vector_bound == "memory")
sve_mem = sum(1 for s in sve_ds.samples if s.vector_bound == "memory")
print(
    f"\nmemory-bound kernels: {neon_mem}/{len(neon_ds.samples)} on NEON -> "
    f"{sve_mem}/{len(sve_ds.samples)} on SVE (wider lanes, same bandwidth)"
)

# -- 2. does the NEON-fitted model transfer? -------------------------------------

native = RatedSpeedupModel(NonNegativeLeastSquares()).fit(sve_ds.samples)
transferred = RatedSpeedupModel(NonNegativeLeastSquares()).fit(neon_ds.samples)

sve_measured = sve_ds.measured
rows = [
    evaluate(
        "fitted on SVE (native)", predict_all(native, sve_ds.samples), sve_measured
    ).row(),
    evaluate(
        "fitted on NEON (transferred)",
        predict_all(transferred, sve_ds.samples),
        sve_measured,
    ).row(),
]
print()
print(ascii_table(rows, title="Predicting SVE speedups"))
print(
    "\nThe transferred model inherits NEON's weights — e.g. it cannot "
    "know SVE's gathers are real instructions rather than insert "
    "chains — so the native fit wins: cost models are per-target "
    "artifacts, which is the paper's premise."
)
