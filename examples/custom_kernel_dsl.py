"""Write kernels in the C-like textual frontend and analyze them.

Run:  python examples/custom_kernel_dsl.py
"""

from repro import get_target, measure_kernel
from repro.analysis import analyze_dependences, classify_scalars
from repro.frontend import parse_kernel
from repro.vectorize import VectorizationFailure

SOURCES = {
    "stencil": """
        kernel stencil {
            f32 out[32000], in[32000];
            for (i = 0; i < 31998; i++) {
                out[i + 1] = (in[i] + in[i + 1] + in[i + 2]) * 0.333;
            }
        }
    """,
    "gather_dot": """
        kernel gather_dot {
            f32 a[32000], b[32000];
            i32 idx[32000];
            f32 acc = 0.0;
            for (i = 0; i < 32000; i++) {
                acc = acc + a[i] * b[idx[i]];
            }
        }
    """,
    "clip": """
        kernel clip {
            f32 x[32000];
            f32 lo = -0.5, hi = 0.5;
            for (i = 0; i < 32000; i++) {
                x[i] = min(max(x[i], lo), hi);
            }
        }
    """,
    "prefix_sum": """
        kernel prefix_sum {
            f32 a[32000], b[32000];
            f32 run = 0.0;
            for (i = 0; i < 32000; i++) {
                run = run + a[i];
                b[i] = run;
            }
        }
    """,
    "recurrence": """
        kernel recurrence {
            f32 a[32000], b[32000];
            for (i = 0; i < 31999; i++) {
                a[i + 1] = a[i] * 0.9 + b[i + 1];
            }
        }
    """,
}

arm = get_target("arm")
x86 = get_target("x86")

for name, source in SOURCES.items():
    kernel = parse_kernel(source)
    deps = analyze_dependences(kernel)
    scalars = classify_scalars(kernel)

    print(f"== {name} ==")
    if deps.dependences:
        for d in deps.dependences:
            print(f"  dependence: {d}")
    for sname, info in scalars.items():
        print(f"  scalar {sname}: {info.klass.value}"
              + (f" ({info.op.value} reduction)" if info.op else ""))

    for target in (arm, x86):
        result = measure_kernel(kernel, target)
        if isinstance(result, VectorizationFailure):
            print(f"  {target.name}: NOT vectorizable — {result.reason}")
        else:
            print(
                f"  {target.name}: VF={result.vf}, measured speedup "
                f"{result.speedup:.2f} ({result.vector_breakdown.bound}-bound)"
            )
    print()
