"""Fit the paper's cost models on the TSVC dataset and inspect them.

Reproduces the modelling workflow end to end: build the measurement
dataset, fit every model family with every method, compare in-sample
and LOOCV quality, and print the fitted per-instruction-class weights
(the ω vector of ``S_est = Σ cᵢ·ωᵢ``).

Run:  python examples/model_tuning.py
"""

import numpy as np

from repro import LLVMLikeCostModel, RatedSpeedupModel, SpeedupModel, build_dataset
from repro.costmodel import (
    FEATURE_NAMES,
    ExtendedSpeedupModel,
    LinearCostModel,
    predict_all,
)
from repro.experiments import ARM_LLV
from repro.experiments.reporting import ascii_table
from repro.fitting import LeastSquares, LinearSVR, NonNegativeLeastSquares
from repro.validation import evaluate, loocv_predictions

ds = build_dataset(ARM_LLV)
print(ds.summary(), "\n")
measured = ds.measured

# -- compare every model family x fitting method --------------------------------

rows = []
factories = {
    "llvm-static": lambda: LLVMLikeCostModel(),
    "cost-NNLS": lambda: LinearCostModel(NonNegativeLeastSquares()),
    "speedup-L2": lambda: SpeedupModel(LeastSquares()),
    "speedup-SVR": lambda: SpeedupModel(LinearSVR()),
    "rated-L2": lambda: RatedSpeedupModel(LeastSquares()),
    "rated-NNLS": lambda: RatedSpeedupModel(NonNegativeLeastSquares()),
    "rated-SVR": lambda: RatedSpeedupModel(LinearSVR()),
    # The paper's "next steps": more code features (VF, arithmetic
    # intensity, block shares, scalar composition).
    "extended-L2": lambda: ExtendedSpeedupModel(LeastSquares()),
    "extended-SVR": lambda: ExtendedSpeedupModel(LinearSVR()),
}
for label, factory in factories.items():
    model = factory().fit(ds.samples)
    fit_row = evaluate(label, predict_all(model, ds.samples), measured).row()
    if label != "llvm-static":
        loocv = loocv_predictions(factory, ds.samples)
        fit_row["LOOCV r"] = round(
            evaluate(label, loocv, measured).pearson, 3
        )
    rows.append(fit_row)
print(ascii_table(rows, title="Model comparison on ARM (fit-all + LOOCV)"))

# -- inspect the winning model's weights -------------------------------------------

best = RatedSpeedupModel(NonNegativeLeastSquares()).fit(ds.samples)
print("\nFitted rated-NNLS weights (speedup contribution per block share):")
order = np.argsort(-best.weights)
for j in order:
    if best.weights[j] > 1e-6:
        print(f"  {FEATURE_NAMES[j]:>10s}  {best.weights[j]:8.3f}")

print(
    "\nReading: classes with large weights raise the predicted speedup "
    "when they dominate a block; classes fitted to ~0 act as penalties "
    "by displacing profitable ones in the composition."
)

# -- where does the model still miss? -------------------------------------------------

preds = predict_all(best, ds.samples)
resid = np.abs(preds - measured)
worst = np.argsort(-resid)[:5]
rows = [
    {
        "kernel": ds.samples[j].name,
        "predicted": round(float(preds[j]), 2),
        "measured": round(float(measured[j]), 2),
        "vector bound": ds.samples[j].vector_bound,
    }
    for j in worst
]
print()
print(ascii_table(rows, title="Largest remaining prediction errors"))
